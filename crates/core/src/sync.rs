//! The synchronous protocol — Figures 1 and 2 of the paper, line by line.
//!
//! Design principle (§3.3): *fast reads*. A read is purely local — no wait
//! statement, no messages. The price is paid at join and write time:
//!
//! * **join** (Figure 1): wait `δ` (line 02 — see the Figure 3 discussion
//!   below); if no `WRITE` arrived in the meantime (line 03), broadcast
//!   `INQUIRY` (line 05) and wait the `2δ` maximum round trip (line 06);
//!   adopt the freshest reply (lines 07–08); become active (line 10) and
//!   answer postponed inquiries (line 11).
//! * **write** (Figure 2): broadcast `WRITE(v, sn)` and wait `δ` so every
//!   process present at the broadcast has delivered it before the write
//!   returns (timely delivery).
//! * **read** (Figure 2): return the local copy. Zero ticks, zero messages.
//!
//! ## Why the `wait(δ)` at line 02 (Figure 3)
//!
//! A process `pᵢ` entering *just after* a write's broadcast is not covered
//! by the broadcast's timely delivery (it was not in the system at the
//! send). Without line 02, `pᵢ` could inquire, gather only *old* replies
//! that raced past the in-flight `WRITE`s, and serve a stale value on a
//! later read that is concurrent with nothing — a regularity violation.
//! Waiting `δ` first guarantees any write concurrent with the join's start
//! has been delivered to the repliers (and to `pᵢ` itself if it was in the
//! system at the send). [`SyncConfig::skip_join_wait`] disables the wait to
//! reproduce Figure 3(a) experimentally.
//!
//! ## Assumptions inherited from the paper
//!
//! Known delay bound `δ`; known constant churn `c ≤ 1/(3δ)` (Theorem 1);
//! writes are not concurrent (single writer, or externally serialized);
//! reliable timely broadcast.

use dynareg_sim::{NodeId, OpId, Span, Time};

use crate::actor::{Effect, OpOutcome, RegisterProcess, Value};

/// Wire messages of the synchronous protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncMsg<V> {
    /// `INQUIRY(i)` — a joining process asks for the register value
    /// (Figure 1, line 05). The sender id travels in the envelope.
    Inquiry,
    /// `REPLY(⟨i, register, sn⟩)` — an active process's current copy
    /// (Figure 1, lines 11 & 14). `value` is `None` only if the replier
    /// itself never obtained a value (impossible under the paper's
    /// assumptions; representable so over-bound churn experiments stay
    /// well-defined).
    Reply {
        /// The replier's register copy.
        value: Option<V>,
        /// The copy's sequence number (−1 = never wrote nor adopted).
        sn: i64,
    },
    /// `WRITE(val, sn)` — a write's dissemination (Figure 2, line 01).
    Write {
        /// The value being written.
        value: V,
        /// Its sequence number.
        sn: i64,
    },
}

impl<V> SyncMsg<V> {
    /// Message label for traces and statistics.
    pub fn label(&self) -> &'static str {
        match self {
            SyncMsg::Inquiry => "INQUIRY",
            SyncMsg::Reply { .. } => "REPLY",
            SyncMsg::Write { .. } => "WRITE",
        }
    }
}

/// Configuration of the synchronous protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// The known bound `δ` on broadcast/point-to-point latency.
    pub delta: Span,
    /// Disable the Figure 1 line-02 `wait(δ)` — **unsound**; exists solely
    /// to reproduce the Figure 3(a) counter-example.
    pub skip_join_wait: bool,
}

impl SyncConfig {
    /// The paper's protocol with bound `delta`.
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn new(delta: Span) -> SyncConfig {
        assert!(!delta.is_zero(), "delta must be at least one tick");
        SyncConfig {
            delta,
            skip_join_wait: false,
        }
    }

    /// The Figure 3(a) ablation: same protocol without the initial join
    /// wait.
    pub fn without_join_wait(delta: Span) -> SyncConfig {
        SyncConfig {
            skip_join_wait: true,
            ..SyncConfig::new(delta)
        }
    }

    /// The churn threshold `1/(3δ)` under which Theorem 1 proves the
    /// protocol correct.
    pub fn churn_threshold(&self) -> f64 {
        1.0 / (3.0 * self.delta.as_ticks() as f64)
    }
}

/// Timer tags (the protocol's three `wait` statements).
const TIMER_JOIN_WAIT: u64 = 1; // Figure 1, line 02: wait(δ)
const TIMER_INQUIRY_WAIT: u64 = 2; // Figure 1, line 06: wait(2δ)
const TIMER_WRITE_WAIT: u64 = 3; // Figure 2, line 02: wait(δ)

/// Join-phase progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinPhase {
    /// Figure 1 line 02: waiting the initial `δ`.
    InitialWait,
    /// Figure 1 line 06: `INQUIRY` broadcast, waiting `2δ` for replies.
    Inquiring,
    /// Join returned; process is active.
    Done,
}

/// One process running the synchronous protocol of Figures 1–2.
///
/// # Example
///
/// ```
/// use dynareg_core::sync::{SyncConfig, SyncRegister};
/// use dynareg_core::{RegisterProcess, Effect, OpOutcome};
/// use dynareg_sim::{NodeId, OpId, Span, Time};
///
/// // A bootstrap member holds the initial value and reads it locally.
/// let cfg = SyncConfig::new(Span::ticks(4));
/// let mut p = SyncRegister::new_bootstrap(NodeId::from_raw(0), cfg, 0u64);
/// let effects = p.on_read(Time::ZERO, OpId::from_raw(1));
/// assert!(matches!(
///     effects[0],
///     Effect::OpComplete { outcome: OpOutcome::Read(Some(0)), .. }
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct SyncRegister<V> {
    id: NodeId,
    config: SyncConfig,
    /// `registerᵢ` — the local copy (`None` = ⊥).
    register: Option<V>,
    /// `snᵢ` — sequence number of the local copy (−1 while ⊥).
    sn: i64,
    /// `activeᵢ`.
    active: bool,
    /// `repliesᵢ` — (sender, value, sn) triples gathered while joining.
    replies: Vec<(NodeId, Option<V>, i64)>,
    /// `reply_toᵢ` — inquirers to answer upon activation.
    reply_to: Vec<NodeId>,
    phase: JoinPhase,
    /// The in-flight write, if any (the paper's writer blocks in `wait(δ)`).
    pending_write: Option<OpId>,
    /// The in-flight join op id (recorded by the runtime for the history).
    pending_join: Option<OpId>,
}

impl<V: Value> SyncRegister<V> {
    /// A process of the initial population: active from the start, holding
    /// the register's initial value with sequence number 0 (§3.3,
    /// "Initially, n processes compose the system…").
    pub fn new_bootstrap(id: NodeId, config: SyncConfig, initial: V) -> SyncRegister<V> {
        SyncRegister {
            id,
            config,
            register: Some(initial),
            sn: 0,
            active: true,
            replies: Vec::new(),
            reply_to: Vec::new(),
            phase: JoinPhase::Done,
            pending_write: None,
            pending_join: None,
        }
    }

    /// Figure 1 lines 13–17 and Figure 2 lines 03–04: the message handlers,
    /// in push form so the delivery fast path appends into a reused buffer.
    fn handle_message(
        &mut self,
        _now: Time,
        from: NodeId,
        msg: SyncMsg<V>,
        out: &mut Vec<Effect<SyncMsg<V>, V>>,
    ) {
        match msg {
            // Figure 1, lines 13–16.
            SyncMsg::Inquiry => {
                if self.active {
                    // Line 14: immediate REPLY.
                    out.push(Effect::Send {
                        to: from,
                        msg: SyncMsg::Reply {
                            value: self.register.clone(),
                            sn: self.sn,
                        },
                    });
                } else {
                    // Line 15: postpone until active.
                    if !self.reply_to.contains(&from) {
                        self.reply_to.push(from);
                    }
                }
            }
            // Figure 1, line 17.
            SyncMsg::Reply { value, sn } => {
                self.replies.push((from, value, sn));
            }
            // Figure 2, lines 03–04.
            SyncMsg::Write { value, sn } => {
                if sn > self.sn {
                    self.register = Some(value);
                    self.sn = sn;
                }
            }
        }
    }

    /// A process about to enter the system; `join_op` identifies its join
    /// operation in the recorded history.
    pub fn new_joiner(id: NodeId, config: SyncConfig, join_op: OpId) -> SyncRegister<V> {
        SyncRegister {
            id,
            config,
            register: None,
            sn: -1,
            active: false,
            replies: Vec::new(),
            reply_to: Vec::new(),
            phase: JoinPhase::InitialWait,
            pending_write: None,
            pending_join: Some(join_op),
        }
    }

    /// The join operation this process is executing, if any.
    pub fn pending_join(&self) -> Option<OpId> {
        self.pending_join
    }

    /// The local register copy (`None` = ⊥).
    pub fn local_value(&self) -> Option<&V> {
        self.register.as_ref()
    }

    /// The local sequence number (−1 while ⊥).
    pub fn local_sn(&self) -> i64 {
        self.sn
    }

    /// Figure 1, lines 10–11: switch to active and flush `reply_toᵢ`.
    fn become_active(&mut self) -> Vec<Effect<SyncMsg<V>, V>> {
        debug_assert!(!self.active);
        // Line 10: activeᵢ ← true.
        self.active = true;
        self.phase = JoinPhase::Done;
        let mut effects = Vec::new();
        // Line 11: for each j ∈ reply_toᵢ send REPLY⟨i, registerᵢ, snᵢ⟩.
        for j in std::mem::take(&mut self.reply_to) {
            effects.push(Effect::Send {
                to: j,
                msg: SyncMsg::Reply {
                    value: self.register.clone(),
                    sn: self.sn,
                },
            });
        }
        // Line 12: return ok.
        effects.push(Effect::JoinComplete);
        effects
    }

    /// Figure 1, lines 07–08: adopt the reply with the largest sequence
    /// number, if larger than ours.
    fn adopt_best_reply(&mut self) {
        if let Some((_, value, sn)) = self
            .replies
            .iter()
            .max_by_key(|(id, _, sn)| (*sn, *id))
            .cloned()
        {
            // Line 08: if sn > snᵢ then adopt.
            if sn > self.sn {
                self.sn = sn;
                self.register = value;
            }
        }
    }
}

impl<V: Value> RegisterProcess for SyncRegister<V> {
    type Msg = SyncMsg<V>;
    type Val = V;

    fn id(&self) -> NodeId {
        self.id
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn join_replies(&self) -> Option<usize> {
        if self.active {
            return None;
        }
        // Count distinct senders so a retransmitted inquiry that elicits a
        // duplicate `REPLY` cannot masquerade as progress.
        let mut senders: Vec<NodeId> = self.replies.iter().map(|(id, _, _)| *id).collect();
        senders.sort_unstable();
        senders.dedup();
        Some(senders.len())
    }

    /// `operation join(i)` — Figure 1.
    fn on_enter(&mut self, _now: Time) -> Vec<Effect<SyncMsg<V>, V>> {
        if self.active {
            // Bootstrap member: already active, nothing to do.
            return vec![Effect::JoinComplete];
        }
        // Line 01 happened at construction (registerᵢ ← ⊥, snᵢ ← −1, …).
        if self.config.skip_join_wait {
            // Figure 3(a) ablation: jump straight to the line-03 check.
            self.phase = JoinPhase::InitialWait;
            return self.on_timer(_now, TIMER_JOIN_WAIT);
        }
        // Line 02: wait(δ).
        vec![Effect::SetTimer {
            delay: self.config.delta,
            tag: TIMER_JOIN_WAIT,
        }]
    }

    fn on_timer(&mut self, _now: Time, tag: u64) -> Vec<Effect<SyncMsg<V>, V>> {
        match tag {
            TIMER_JOIN_WAIT => {
                debug_assert_eq!(self.phase, JoinPhase::InitialWait);
                // Line 03: if registerᵢ = ⊥ …
                if self.register.is_none() {
                    // Line 04: repliesᵢ ← ∅.
                    self.replies.clear();
                    self.phase = JoinPhase::Inquiring;
                    // Line 05: broadcast INQUIRY(i); line 06: wait(2δ).
                    vec![
                        Effect::Broadcast {
                            msg: SyncMsg::Inquiry,
                        },
                        Effect::SetTimer {
                            delay: self.config.delta.times(2),
                            tag: TIMER_INQUIRY_WAIT,
                        },
                    ]
                } else {
                    // A WRITE arrived during the wait: lines 10-12 directly.
                    self.become_active()
                }
            }
            TIMER_INQUIRY_WAIT => {
                debug_assert_eq!(self.phase, JoinPhase::Inquiring);
                // Lines 07–08: adopt the freshest reply.
                self.adopt_best_reply();
                // Lines 10–12.
                self.become_active()
            }
            TIMER_WRITE_WAIT => {
                // Figure 2, line 02: the write's wait(δ) elapsed → return ok.
                let op = self
                    .pending_write
                    .take()
                    .expect("write timer without pending write");
                vec![Effect::OpComplete {
                    op,
                    outcome: OpOutcome::WriteOk,
                }]
            }
            other => panic!("unknown timer tag {other}"),
        }
    }

    fn on_message(
        &mut self,
        now: Time,
        from: NodeId,
        msg: SyncMsg<V>,
    ) -> Vec<Effect<SyncMsg<V>, V>> {
        let mut out = Vec::new();
        self.handle_message(now, from, msg, &mut out);
        out
    }

    // Message delivery is the simulator's hottest edge (every INQUIRY in a
    // join wave lands here once per process); the buffered form makes it
    // allocation-free.
    fn on_message_into(
        &mut self,
        now: Time,
        from: NodeId,
        msg: SyncMsg<V>,
        out: &mut Vec<Effect<SyncMsg<V>, V>>,
    ) {
        self.handle_message(now, from, msg, out);
    }

    /// `operation read()` — Figure 2: purely local, zero latency.
    fn on_read(&mut self, _now: Time, op: OpId) -> Vec<Effect<SyncMsg<V>, V>> {
        assert!(self.active, "reads are invoked only after join returns");
        vec![Effect::OpComplete {
            op,
            outcome: OpOutcome::Read(self.register.clone()),
        }]
    }

    /// `operation write(v)` — Figure 2.
    fn on_write(&mut self, _now: Time, op: OpId, value: V) -> Vec<Effect<SyncMsg<V>, V>> {
        assert!(self.active, "writes are invoked only after join returns");
        assert!(
            self.pending_write.is_none(),
            "writes are not concurrent (paper assumption)"
        );
        // Line 01: snᵢ ← snᵢ + 1; registerᵢ ← v; broadcast WRITE(v, snᵢ).
        self.sn += 1;
        self.register = Some(value.clone());
        self.pending_write = Some(op);
        vec![
            Effect::Broadcast {
                msg: SyncMsg::Write { value, sn: self.sn },
            },
            // Line 02: wait(δ) … return ok (on timer).
            Effect::SetTimer {
                delay: self.config.delta,
                tag: TIMER_WRITE_WAIT,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::completions;

    fn nid(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn oid(i: u64) -> OpId {
        OpId::from_raw(i)
    }

    fn cfg() -> SyncConfig {
        SyncConfig::new(Span::ticks(4))
    }

    fn bootstrap(i: u64) -> SyncRegister<u64> {
        SyncRegister::new_bootstrap(nid(i), cfg(), 0)
    }

    fn joiner(i: u64) -> SyncRegister<u64> {
        SyncRegister::new_joiner(nid(i), cfg(), oid(900 + i))
    }

    #[test]
    fn bootstrap_is_immediately_active_with_initial_value() {
        let mut p = bootstrap(0);
        assert!(p.is_active());
        assert_eq!(p.on_enter(Time::ZERO), vec![Effect::JoinComplete]);
        assert_eq!(p.local_value(), Some(&0));
        assert_eq!(p.local_sn(), 0);
    }

    #[test]
    fn read_is_local_and_immediate() {
        let mut p = bootstrap(0);
        let effects = p.on_read(Time::ZERO, oid(1));
        assert_eq!(
            completions(&effects),
            vec![(oid(1), OpOutcome::Read(Some(0)))]
        );
        assert_eq!(effects.len(), 1, "no messages, no timers");
    }

    #[test]
    fn write_broadcasts_then_waits_delta() {
        let mut p = bootstrap(0);
        let effects = p.on_write(Time::ZERO, oid(1), 42);
        assert_eq!(
            effects[0],
            Effect::Broadcast {
                msg: SyncMsg::Write { value: 42, sn: 1 }
            }
        );
        assert_eq!(
            effects[1],
            Effect::SetTimer {
                delay: Span::ticks(4),
                tag: TIMER_WRITE_WAIT
            }
        );
        // Local copy updated immediately (line 01).
        assert_eq!(p.local_value(), Some(&42));
        // Completion fires on the timer.
        let done = p.on_timer(Time::at(4), TIMER_WRITE_WAIT);
        assert_eq!(completions(&done), vec![(oid(1), OpOutcome::WriteOk)]);
    }

    #[test]
    #[should_panic(expected = "not concurrent")]
    fn overlapping_writes_panic() {
        let mut p = bootstrap(0);
        p.on_write(Time::ZERO, oid(1), 42);
        p.on_write(Time::at(1), oid(2), 43);
    }

    #[test]
    fn join_waits_delta_then_inquires_when_bottom() {
        let mut p = joiner(5);
        let enter = p.on_enter(Time::ZERO);
        assert_eq!(
            enter,
            vec![Effect::SetTimer {
                delay: Span::ticks(4),
                tag: TIMER_JOIN_WAIT
            }]
        );
        let after_wait = p.on_timer(Time::at(4), TIMER_JOIN_WAIT);
        assert_eq!(
            after_wait[0],
            Effect::Broadcast {
                msg: SyncMsg::Inquiry
            }
        );
        assert_eq!(
            after_wait[1],
            Effect::SetTimer {
                delay: Span::ticks(8),
                tag: TIMER_INQUIRY_WAIT
            }
        );
        assert!(!p.is_active());
    }

    #[test]
    fn join_skips_inquiry_if_write_arrived_during_wait() {
        let mut p = joiner(5);
        p.on_enter(Time::ZERO);
        // A WRITE lands during the initial δ wait (listening mode).
        p.on_message(Time::at(2), nid(0), SyncMsg::Write { value: 9, sn: 3 });
        let effects = p.on_timer(Time::at(4), TIMER_JOIN_WAIT);
        assert_eq!(effects, vec![Effect::JoinComplete]);
        assert!(p.is_active());
        assert_eq!(p.local_value(), Some(&9));
        assert_eq!(p.local_sn(), 3);
    }

    #[test]
    fn join_adopts_freshest_reply() {
        let mut p = joiner(5);
        p.on_enter(Time::ZERO);
        p.on_timer(Time::at(4), TIMER_JOIN_WAIT);
        p.on_message(
            Time::at(6),
            nid(1),
            SyncMsg::Reply {
                value: Some(10),
                sn: 1,
            },
        );
        p.on_message(
            Time::at(7),
            nid(2),
            SyncMsg::Reply {
                value: Some(20),
                sn: 2,
            },
        );
        p.on_message(
            Time::at(8),
            nid(3),
            SyncMsg::Reply {
                value: Some(10),
                sn: 1,
            },
        );
        let effects = p.on_timer(Time::at(12), TIMER_INQUIRY_WAIT);
        assert!(effects.contains(&Effect::JoinComplete));
        assert_eq!(p.local_value(), Some(&20));
        assert_eq!(p.local_sn(), 2);
    }

    #[test]
    fn join_with_no_replies_activates_bottom() {
        // Beyond the churn bound nobody may answer; the process still
        // activates (with ⊥) — the checker will flag any read of ⊥.
        let mut p = joiner(5);
        p.on_enter(Time::ZERO);
        p.on_timer(Time::at(4), TIMER_JOIN_WAIT);
        let effects = p.on_timer(Time::at(12), TIMER_INQUIRY_WAIT);
        assert!(effects.contains(&Effect::JoinComplete));
        assert_eq!(p.local_value(), None);
    }

    #[test]
    fn write_received_during_inquiry_beats_stale_replies() {
        let mut p = joiner(5);
        p.on_enter(Time::ZERO);
        p.on_timer(Time::at(4), TIMER_JOIN_WAIT);
        p.on_message(
            Time::at(5),
            nid(1),
            SyncMsg::Reply {
                value: Some(10),
                sn: 1,
            },
        );
        // Concurrent write lands directly (line 03-04 of Figure 2).
        p.on_message(Time::at(6), nid(0), SyncMsg::Write { value: 30, sn: 3 });
        p.on_timer(Time::at(12), TIMER_INQUIRY_WAIT);
        assert_eq!(
            p.local_value(),
            Some(&30),
            "stale reply must not regress the copy"
        );
        assert_eq!(p.local_sn(), 3);
    }

    #[test]
    fn active_process_replies_to_inquiry_immediately() {
        let mut p = bootstrap(0);
        let effects = p.on_message(Time::at(1), nid(7), SyncMsg::Inquiry);
        assert_eq!(
            effects,
            vec![Effect::Send {
                to: nid(7),
                msg: SyncMsg::Reply {
                    value: Some(0),
                    sn: 0
                }
            }]
        );
    }

    #[test]
    fn joining_process_postpones_reply_until_active() {
        let mut p = joiner(5);
        p.on_enter(Time::ZERO);
        // Another joiner inquires while we are still joining.
        assert!(p
            .on_message(Time::at(1), nid(8), SyncMsg::Inquiry)
            .is_empty());
        // Duplicate inquiries are answered once.
        assert!(p
            .on_message(Time::at(2), nid(8), SyncMsg::Inquiry)
            .is_empty());
        p.on_message(Time::at(2), nid(0), SyncMsg::Write { value: 5, sn: 1 });
        let effects = p.on_timer(Time::at(4), TIMER_JOIN_WAIT);
        let replies: Vec<&Effect<SyncMsg<u64>, u64>> = effects
            .iter()
            .filter(|e| matches!(e, Effect::Send { .. }))
            .collect();
        assert_eq!(
            replies,
            vec![&Effect::Send {
                to: nid(8),
                msg: SyncMsg::Reply {
                    value: Some(5),
                    sn: 1
                }
            }]
        );
    }

    #[test]
    fn stale_write_does_not_regress() {
        let mut p = bootstrap(0);
        p.on_message(Time::at(1), nid(1), SyncMsg::Write { value: 7, sn: 2 });
        p.on_message(Time::at(2), nid(1), SyncMsg::Write { value: 3, sn: 1 });
        assert_eq!(p.local_value(), Some(&7));
        assert_eq!(p.local_sn(), 2);
    }

    #[test]
    fn skip_join_wait_inquires_immediately() {
        let mut p: SyncRegister<u64> = SyncRegister::new_joiner(
            nid(5),
            SyncConfig::without_join_wait(Span::ticks(4)),
            oid(1),
        );
        let effects = p.on_enter(Time::ZERO);
        assert_eq!(
            effects[0],
            Effect::Broadcast {
                msg: SyncMsg::Inquiry
            }
        );
    }

    #[test]
    fn sequential_writes_increment_sn() {
        let mut p = bootstrap(0);
        p.on_write(Time::ZERO, oid(1), 10);
        p.on_timer(Time::at(4), TIMER_WRITE_WAIT);
        let effects = p.on_write(Time::at(5), oid(2), 20);
        assert_eq!(
            effects[0],
            Effect::Broadcast {
                msg: SyncMsg::Write { value: 20, sn: 2 }
            }
        );
    }

    #[test]
    fn writer_handover_continues_sn_chain() {
        // A second (non-concurrent) writer that observed sn=5 continues at 6.
        let mut p = bootstrap(1);
        p.on_message(Time::at(1), nid(0), SyncMsg::Write { value: 50, sn: 5 });
        let effects = p.on_write(Time::at(10), oid(3), 60);
        assert_eq!(
            effects[0],
            Effect::Broadcast {
                msg: SyncMsg::Write { value: 60, sn: 6 }
            }
        );
    }

    #[test]
    fn churn_threshold_matches_theorem_1() {
        assert!((cfg().churn_threshold() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn labels_cover_all_variants() {
        assert_eq!(SyncMsg::<u64>::Inquiry.label(), "INQUIRY");
        assert_eq!(
            SyncMsg::Reply {
                value: Some(1u64),
                sn: 0
            }
            .label(),
            "REPLY"
        );
        assert_eq!(SyncMsg::Write { value: 1u64, sn: 0 }.label(), "WRITE");
    }

    #[test]
    #[should_panic(expected = "after join returns")]
    fn read_before_active_panics() {
        let mut p = joiner(5);
        p.on_enter(Time::ZERO);
        p.on_read(Time::at(1), oid(1));
    }
}
