//! Keyed register spaces: many registers over one churn substrate.
//!
//! The paper implements **one** anonymous register per system; its §7 asks
//! for richer objects. This module generalizes the abstraction to a
//! *register space* — a dense set of keys `r0 … r(k−1)`, each an
//! independent register run by its own protocol instance — while paying
//! the membership machinery (join handshake, presence, broadcast fan-out)
//! **once per process**, not once per key:
//!
//! * [`RegisterSpaceProcess`] is the runtime-facing trait: every client
//!   operation and completion addresses a `(RegisterId, op)` pair, and
//!   effects carry their key ([`SpaceEffect`]).
//! * [`RegisterSpace`] multiplexes `k` instances of any
//!   [`RegisterProcess`] behind a **single shared join handshake**: a
//!   joiner inquires once ([`SpaceMsg::JoinAll`]), every responder answers
//!   with *all* keys' states in one physical reply
//!   ([`SpaceMsg::Batch`]), and join-phase timers are shared. Steady-state
//!   traffic is tagged per key ([`SpaceMsg::Keyed`]); timer tags are
//!   key-partitioned.
//! * [`SoloSpace`] adapts a single [`RegisterProcess`] to the space trait
//!   with **zero wire or behavioural overhead** — raw protocol messages,
//!   no key tags. It is the pre-redesign single-register path, kept as the
//!   oracle the 1-key equivalence property tests compare against.
//!
//! # The shared handshake's contract
//!
//! [`RegisterSpace`] coalesces the join phase generically, which requires
//! two properties both paper protocols have:
//!
//! 1. **Join-phase broadcasts are key-agnostic.** An `INQUIRY` carries no
//!    register state, so when several instances inquire in the same step
//!    the space sends one [`SpaceMsg::JoinAll`] (the lowest emitting key's
//!    payload) and lets every responder answer for every key.
//! 2. **Join-phase timers are uniform.** Instances that are still joining
//!    request the same `(delay, tag)` waits in the same step (the sync
//!    protocol's `wait(δ)` / `wait(2δ)`), so the space arms one shared
//!    timer and dispatches its expiry to every still-joining instance.
//!
//! Steady-state operation needs no contract: a read/write/timer touches
//! exactly one key's instance and its effects are tagged with that key.
//!
//! # Key-sharded join replies
//!
//! The shared handshake's full-state reply transfers `K` payload entries
//! per responder — `K·n` entries per join, which is what collapses join
//! throughput at large key counts. [`ShardConfig`] shards the reply side:
//! every responder belongs to a deterministic shard
//! `shard(p) = hash(node_id) mod G` ([`shard_of_node`]) and answers a
//! (non-full) [`SpaceMsg::JoinAll`] only for the keys of *its* shard
//! (`key mod G`), so one reply carries `K/G` entries. The joiner still
//! broadcasts a single inquiry; it tracks, per shard, the distinct
//! responders whose [`SpaceMsg::Batch`]es covered that shard's keys, and
//! the shared join timer only activates the keys of shards that met the
//! configured per-shard quorum — shards still short keep their instances
//! joining and the timer **re-fires the inquiry** (re-arming itself) until
//! every shard has answered. A re-inquiry is *full* (`full: true`): any
//! active process answers for all keys, so one starved shard degrades a
//! join to the legacy full-state transfer for one extra round instead of
//! wedging it — availability falls back to the paper's argument while the
//! common case pays `1/G` of the payload.
//!
//! Quorum-based protocols (ES) set no join timers; a sharded space arms
//! its own re-inquiry timer ([`ShardConfig::reinquire_every`]) instead,
//! and the per-key join quorum is sized to the shard
//! (`EsConfig::join_quorum`) — the quorum-per-shard liveness trade the
//! fleet tier's phase diagrams measure.
//!
//! `G = 1` is the legacy full-reply handshake, bit for bit: every gate,
//! filter and fallback below is conditioned on `groups > 1`, and the
//! equivalence property tests plus the CI `cmp` gate hold the digest
//! identity.
//!
//! # Loss-tolerant join retransmission
//!
//! The paper assumes reliable channels, so a lost inquiry or reply is a
//! case its join never handles: a sync joiner blind-activates at `⊥` and a
//! quorum-driven (ES) joiner wedges **forever**. [`RetransmitConfig`]
//! bounds that gap for unsharded (`G = 1`) handshakes — sharded spaces
//! already re-fire via the withheld-expiry/re-inquiry machinery above:
//!
//! * **Timer-driven joins** (sync): when the post-inquiry wait expires
//!   with *zero* replies gathered ([`RegisterProcess::join_replies`]), the
//!   space re-fires the inquiry and re-arms the same wait instead of
//!   dispatching the expiry, up to [`RetransmitConfig::budget`] times per
//!   join; the budget exhausted, the expiry dispatches normally and the
//!   paper's blind `⊥` activation proceeds.
//! * **Timer-less joins** (ES): the space arms its own silence timer
//!   ([`RETRANSMIT_TAG`]); each expiry with no new replies since the last
//!   beat re-broadcasts the inquiry and doubles the wait (capped after
//!   `budget` doublings — the "current timeout estimate"), so a joiner
//!   whose handshake was swallowed converges within a bounded number of
//!   rounds once the network turns lossless.
//!
//! Every retransmission is marked by a digest-invisible
//! [`SpaceEffect::Retransmit`] so the runtime can count
//! `join.retransmits` without parsing wire labels. Responders are
//! idempotent by construction: a re-received inquiry is re-answered from
//! current state, and duplicate `Batch` replies never double-count a
//! shard quorum (`shard_heard` is a set per shard).
//!
//! The full wire-level lifecycle (message grammar, shard striping, the
//! retransmit state machine) is specified in `docs/PROTOCOL.md` at the
//! repository root.

use std::collections::BTreeSet;
use std::fmt;

use dynareg_sim::{NodeId, OpId, RegisterId, Span, Time};

use crate::actor::{Effect, OpOutcome, RegisterProcess, Value};

/// Wire messages of a register space over inner protocol messages `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceMsg<M> {
    /// One register's protocol message, delivered to that key's instance.
    Keyed {
        /// The addressed register.
        key: RegisterId,
        /// The inner protocol payload.
        inner: M,
    },
    /// The shared join handshake: a joiner's single inquiry. A non-`full`
    /// inquiry is answered by each responder for its own key shard; a
    /// `full` inquiry (re-inquiries, and every inquiry of an unsharded
    /// space) is delivered to *every* key's instance at the receiver
    /// (join-phase broadcasts are key-agnostic; see the module docs).
    JoinAll {
        /// The inner inquiry payload.
        inner: M,
        /// Whether responders must answer for every key regardless of
        /// their shard (the starvation fallback; always effectively true
        /// when `G = 1`).
        full: bool,
    },
    /// The batched per-key answers to a fan-in delivery — all keys' states
    /// in one physical message (the other half of the shared handshake).
    Batch {
        /// `(key, payload)` pairs, in processing order.
        replies: Vec<(RegisterId, M)>,
    },
}

impl<M> SpaceMsg<M> {
    /// Number of inner protocol messages this physical message carries.
    pub fn payload_count(&self) -> usize {
        match self {
            SpaceMsg::Keyed { .. } | SpaceMsg::JoinAll { .. } => 1,
            SpaceMsg::Batch { replies } => replies.len(),
        }
    }
}

/// An output of a register-space state machine, interpreted by the
/// runtime. The mirror of [`Effect`] with the key carried wherever the
/// runtime needs it (completions and annotations); wire payloads carry
/// their key inside the message type instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceEffect<M, V> {
    /// Send `msg` point-to-point to `to`.
    Send {
        /// Recipient process.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Broadcast `msg` to every process in the system.
    Broadcast {
        /// Payload.
        msg: M,
    },
    /// Request a timer callback after `delay`, tagged with `tag`
    /// (key-partitioned by the space; opaque to the runtime).
    SetTimer {
        /// How long to wait.
        delay: Span,
        /// Discriminator handed back on expiry.
        tag: u64,
    },
    /// The space's join returned `ok`: **every** key's instance is active.
    /// Emitted exactly once per process.
    JoinComplete,
    /// A client operation on `key` returned.
    OpComplete {
        /// The addressed register.
        key: RegisterId,
        /// The operation.
        op: OpId,
        /// Its result.
        outcome: OpOutcome<V>,
    },
    /// Free-form annotation for traces, attributed to a key.
    Note {
        /// The annotating register.
        key: RegisterId,
        /// Message text.
        text: String,
    },
    /// The join handshake was re-fired after silence (see the module's
    /// "Loss-tolerant join retransmission"). A marker, not a message: the
    /// runtime counts it (`join.retransmits`) and annotates the join span,
    /// but it is invisible to the event stream and the run digest.
    Retransmit,
}

/// A keyed register-space instance bound to one process: the runtime-facing
/// generalization of [`RegisterProcess`] where every client operation
/// addresses a `(RegisterId, op)` pair.
///
/// # Contract
///
/// Same shape as [`RegisterProcess`], lifted to the space: `on_enter` is
/// called once; `on_read`/`on_write` only after the space's single
/// [`SpaceEffect::JoinComplete`]; the runtime never overlaps two client
/// operations on the same *process* (per-process sequentiality — stricter
/// than per-key, matching the paper's sequential processes).
pub trait RegisterSpaceProcess: fmt::Debug {
    /// The space's wire message type.
    type Msg: Clone + fmt::Debug;
    /// The registers' value type.
    type Val: Value;

    /// This process's identity.
    fn id(&self) -> NodeId;

    /// Whether the space's join has returned (all keys active).
    fn is_active(&self) -> bool;

    /// Number of keys in the space.
    fn key_count(&self) -> u32;

    /// The process enters the system and starts its (shared) `join`.
    fn on_enter(&mut self, now: Time) -> Vec<SpaceEffect<Self::Msg, Self::Val>>;

    /// A message from `from` is delivered; effects append to `out` (the
    /// runtime calls this with a reused buffer — the delivery fast path).
    fn on_message_into(
        &mut self,
        now: Time,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Vec<SpaceEffect<Self::Msg, Self::Val>>,
    );

    /// Allocating convenience form of
    /// [`on_message_into`](RegisterSpaceProcess::on_message_into).
    fn on_message(
        &mut self,
        now: Time,
        from: NodeId,
        msg: Self::Msg,
    ) -> Vec<SpaceEffect<Self::Msg, Self::Val>> {
        let mut out = Vec::new();
        self.on_message_into(now, from, msg, &mut out);
        out
    }

    /// A timer set via [`SpaceEffect::SetTimer`] with this `tag` expired.
    fn on_timer(&mut self, now: Time, tag: u64) -> Vec<SpaceEffect<Self::Msg, Self::Val>>;

    /// The client invokes `read` on register `key`, identified by `op`.
    fn on_read(
        &mut self,
        now: Time,
        key: RegisterId,
        op: OpId,
    ) -> Vec<SpaceEffect<Self::Msg, Self::Val>>;

    /// The client invokes `write(value)` on register `key`.
    fn on_write(
        &mut self,
        now: Time,
        key: RegisterId,
        op: OpId,
        value: Self::Val,
    ) -> Vec<SpaceEffect<Self::Msg, Self::Val>>;
}

/// Adapts one [`RegisterProcess`] to the space trait with no wire overhead:
/// `Msg = P::Msg` (no key tags), every effect attributed to
/// [`RegisterId::ZERO`]. Byte-identical behaviour to driving `P` directly —
/// this *is* the pre-redesign single-register path, and the 1-key
/// equivalence property tests pit [`RegisterSpace`] against it.
#[derive(Debug)]
pub struct SoloSpace<P: RegisterProcess> {
    inner: P,
    /// Reused scratch so the delivery fast path stays allocation-free.
    scratch: Vec<Effect<P::Msg, P::Val>>,
    /// Join-retransmit policy (`None` = the pre-retransmit path, bit for
    /// bit — the default of [`SoloSpace::new`]).
    retransmit: Option<RetransmitConfig>,
    /// Whether the join broadcast its inquiry yet.
    inquired: bool,
    /// The observed inquiry payload, kept for re-fires.
    last_inquiry: Option<P::Msg>,
    /// `(tag, delay)` of join-phase timers the inner protocol armed, so a
    /// zero-reply interception can re-arm the expiring wait.
    join_timers: Vec<(u64, Span)>,
    /// Whether the silence ([`RETRANSMIT_TAG`]) timer is outstanding.
    retransmit_armed: bool,
    /// Consecutive silent beats (the backoff exponent, plateaued).
    retransmit_attempts: u32,
    /// Zero-reply interceptions consumed (timer-driven joins).
    retransmit_used: u32,
    /// Reply count at the last silence beat (progress detection).
    retransmit_seen: usize,
}

impl<P: RegisterProcess> SoloSpace<P> {
    /// Wraps a protocol instance.
    pub fn new(inner: P) -> SoloSpace<P> {
        SoloSpace {
            inner,
            scratch: Vec::new(),
            retransmit: None,
            inquired: false,
            last_inquiry: None,
            join_timers: Vec::new(),
            retransmit_armed: false,
            retransmit_attempts: 0,
            retransmit_used: 0,
            retransmit_seen: 0,
        }
    }

    /// Installs (or clears) the bounded join-retransmit policy.
    pub fn with_retransmit(mut self, config: Option<RetransmitConfig>) -> SoloSpace<P> {
        self.retransmit = config;
        self
    }

    /// The wrapped instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn lift(
        effects: impl IntoIterator<Item = Effect<P::Msg, P::Val>>,
    ) -> Vec<SpaceEffect<P::Msg, P::Val>> {
        effects.into_iter().map(lift_effect).collect()
    }

    /// Observes a join-phase step's lifted effects (inquiry payload and
    /// armed waits) and appends the silence timer for timer-less joins —
    /// the solo mirror of [`RegisterSpace::flush`]'s bookkeeping. A no-op
    /// unless a retransmit policy is installed and the join is still in
    /// flight.
    fn observe_join_step(&mut self, out: &mut Vec<SpaceEffect<P::Msg, P::Val>>) {
        let Some(cfg) = self.retransmit else {
            return;
        };
        if self.inner.is_active() {
            return;
        }
        for effect in out.iter() {
            match effect {
                SpaceEffect::Broadcast { msg } if !self.inquired => {
                    self.inquired = true;
                    self.last_inquiry = Some(msg.clone());
                }
                SpaceEffect::SetTimer { delay, tag }
                    if *tag != RETRANSMIT_TAG
                        && !self.join_timers.iter().any(|(t, _)| t == tag) =>
                {
                    self.join_timers.push((*tag, *delay));
                }
                _ => {}
            }
        }
        if self.inquired && !self.retransmit_armed && self.join_timers.is_empty() {
            // A timer-less (quorum) protocol inquired: arm the space's own
            // silence timer so a swallowed handshake re-fires.
            out.push(SpaceEffect::SetTimer {
                delay: cfg.backoff(self.retransmit_attempts),
                tag: RETRANSMIT_TAG,
            });
            self.retransmit_armed = true;
            self.retransmit_seen = self.inner.join_replies().unwrap_or(0);
        }
    }

    /// The silence timer fired (timer-less joins): re-broadcast the
    /// inquiry if no reply arrived since the last beat, back the window
    /// off, and re-arm.
    fn retransmit_fire(&mut self) -> Vec<SpaceEffect<P::Msg, P::Val>> {
        self.retransmit_armed = false;
        let Some(cfg) = self.retransmit else {
            return Vec::new();
        };
        if self.inner.is_active() {
            return Vec::new();
        }
        let heard = self.inner.join_replies().unwrap_or(0);
        let silent = heard <= self.retransmit_seen;
        self.retransmit_seen = heard;
        let mut out = Vec::new();
        if silent {
            if let Some(msg) = self.last_inquiry.clone() {
                out.push(SpaceEffect::Broadcast { msg });
                out.push(SpaceEffect::Retransmit);
            }
            self.retransmit_attempts = (self.retransmit_attempts + 1).min(cfg.budget);
        } else {
            self.retransmit_attempts = 0;
        }
        out.push(SpaceEffect::SetTimer {
            delay: cfg.backoff(self.retransmit_attempts),
            tag: RETRANSMIT_TAG,
        });
        self.retransmit_armed = true;
        out
    }

    /// Whether a timer-driven join's expiring wait must be intercepted:
    /// the inquiry is out, zero replies were gathered, and budget remains.
    fn intercepts(&self, tag: u64) -> bool {
        let Some(cfg) = self.retransmit else {
            return false;
        };
        !self.inner.is_active()
            && self.inquired
            && self.retransmit_used < cfg.budget
            && self.inner.join_replies() == Some(0)
            && self.join_timers.iter().any(|&(t, _)| t == tag)
    }
}

/// Attributes a single-register effect to the anchor key.
fn lift_effect<M, V>(e: Effect<M, V>) -> SpaceEffect<M, V> {
    match e {
        Effect::Send { to, msg } => SpaceEffect::Send { to, msg },
        Effect::Broadcast { msg } => SpaceEffect::Broadcast { msg },
        Effect::SetTimer { delay, tag } => SpaceEffect::SetTimer { delay, tag },
        Effect::JoinComplete => SpaceEffect::JoinComplete,
        Effect::OpComplete { op, outcome } => SpaceEffect::OpComplete {
            key: RegisterId::ZERO,
            op,
            outcome,
        },
        Effect::Note(text) => SpaceEffect::Note {
            key: RegisterId::ZERO,
            text,
        },
    }
}

impl<P: RegisterProcess> RegisterSpaceProcess for SoloSpace<P> {
    type Msg = P::Msg;
    type Val = P::Val;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn is_active(&self) -> bool {
        self.inner.is_active()
    }

    fn key_count(&self) -> u32 {
        1
    }

    fn on_enter(&mut self, now: Time) -> Vec<SpaceEffect<P::Msg, P::Val>> {
        let mut out = Self::lift(self.inner.on_enter(now));
        self.observe_join_step(&mut out);
        out
    }

    fn on_message_into(
        &mut self,
        now: Time,
        from: NodeId,
        msg: P::Msg,
        out: &mut Vec<SpaceEffect<P::Msg, P::Val>>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        debug_assert!(scratch.is_empty());
        self.inner.on_message_into(now, from, msg, &mut scratch);
        out.extend(scratch.drain(..).map(lift_effect));
        self.scratch = scratch;
    }

    fn on_timer(&mut self, now: Time, tag: u64) -> Vec<SpaceEffect<P::Msg, P::Val>> {
        if tag == RETRANSMIT_TAG {
            // The space's own silence timer — never forwarded (timer-less
            // inner protocols panic on unknown tags).
            return self.retransmit_fire();
        }
        if self.intercepts(tag) {
            // A timer-driven join's wait expired with zero replies: re-fire
            // the inquiry and re-arm the same wait instead of dispatching
            // the expiry (which would blind-activate at ⊥).
            self.retransmit_used += 1;
            let mut out = Vec::new();
            if let Some(msg) = self.last_inquiry.clone() {
                out.push(SpaceEffect::Broadcast { msg });
                out.push(SpaceEffect::Retransmit);
            }
            if let Some(&(t, delay)) = self.join_timers.iter().find(|&&(t, _)| t == tag) {
                out.push(SpaceEffect::SetTimer { delay, tag: t });
            }
            return out;
        }
        let mut out = Self::lift(self.inner.on_timer(now, tag));
        self.observe_join_step(&mut out);
        out
    }

    fn on_read(
        &mut self,
        now: Time,
        key: RegisterId,
        op: OpId,
    ) -> Vec<SpaceEffect<P::Msg, P::Val>> {
        debug_assert_eq!(key, RegisterId::ZERO, "a solo space has one key");
        Self::lift(self.inner.on_read(now, op))
    }

    fn on_write(
        &mut self,
        now: Time,
        key: RegisterId,
        op: OpId,
        value: P::Val,
    ) -> Vec<SpaceEffect<P::Msg, P::Val>> {
        debug_assert_eq!(key, RegisterId::ZERO, "a solo space has one key");
        Self::lift(self.inner.on_write(now, op, value))
    }
}

/// Timer-tag partitioning: regular tags carry their key in the upper half
/// (`key << 32 | tag`), shared join-phase timers live in a reserved
/// partition marked by the top bit.
const SHARED_TAG: u64 = 1 << 63;
const KEY_TAG_SHIFT: u32 = 32;
const INNER_TAG_MASK: u64 = (1 << KEY_TAG_SHIFT) - 1;
/// The space's own re-inquiry timer (sharded joins over protocols that set
/// no join timers). Inner tags fit 32 bits, so bit 62 cannot collide with
/// a forwarded shared tag.
const REINQUIRE_TAG: u64 = SHARED_TAG | (1 << 62);
/// The unsharded join-retransmit silence timer (timer-less protocols under
/// [`RetransmitConfig`]). Like `REINQUIRE_TAG`, bit 61 cannot collide
/// with a forwarded inner tag.
pub const RETRANSMIT_TAG: u64 = SHARED_TAG | (1 << 61);

/// Bounded join-handshake retransmission policy (see the module's
/// "Loss-tolerant join retransmission"). Attached to a space via
/// [`SoloSpace::with_retransmit`] / [`RegisterSpace::with_retransmit`];
/// absent (the default of every raw constructor), the space behaves
/// exactly as before — lossless paths are bit-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// The initial silence window: how long a joiner's inquiry may go
    /// unanswered before the handshake re-fires (`2δ` in the scenario
    /// harness — the paper's post-inquiry wait).
    pub base: Span,
    /// Retry cap: timer-driven joins intercept at most this many
    /// zero-reply expiries; timer-less joins stop doubling their silence
    /// window after this many consecutive silent beats (the window then
    /// plateaus at `base << budget`, so liveness after the loss stops is
    /// still guaranteed).
    pub budget: u32,
}

impl RetransmitConfig {
    /// A policy re-firing after `base` ticks of silence, budget 4.
    ///
    /// # Panics
    /// Panics if `base` is zero.
    pub fn after(base: Span) -> RetransmitConfig {
        assert!(
            !base.is_zero(),
            "retransmit silence window must be positive"
        );
        RetransmitConfig { base, budget: 4 }
    }

    /// Sets the retry budget (interception cap / backoff plateau).
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn with_budget(mut self, budget: u32) -> RetransmitConfig {
        assert!(budget > 0, "retransmit budget must be positive");
        self.budget = budget;
        self
    }

    /// The silence window after `attempts` consecutive silent beats:
    /// `base << min(attempts, budget)`, shift capped so the window can
    /// never overflow.
    fn backoff(&self, attempts: u32) -> Span {
        Span::ticks(self.base.as_ticks() << attempts.min(self.budget).min(16))
    }
}

/// Deterministic shard of a responder: SplitMix64 finalizer over the node
/// id, reduced mod `groups`. Stable across runs and thread counts.
pub fn shard_of_node(node: NodeId, groups: u32) -> u32 {
    let mut x = node.as_raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % u64::from(groups.max(1))) as u32
}

/// Deterministic shard of a key: dense keys stripe round-robin over the
/// groups, so every shard owns `⌈K/G⌉` or `⌊K/G⌋` keys.
pub fn shard_of_key(key: RegisterId, groups: u32) -> u32 {
    key.as_raw() % groups.max(1)
}

/// How join replies are sharded across responders (see the module docs).
///
/// `ShardConfig::legacy()` (`G = 1`) is the full-state reply handshake —
/// the default of every constructor, wire- and digest-identical to the
/// pre-sharding code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shard groups `G`. `1` = legacy full replies. Clamped to
    /// the key count when a space is assembled (a shard with no keys
    /// answers nothing and gates nothing).
    pub groups: u32,
    /// Distinct responders whose replies must cover a shard before the
    /// shared join timer may activate that shard's keys (sync-style
    /// timer-driven joins; quorum protocols gate on their own
    /// `join_quorum` instead).
    pub quorum: usize,
    /// Re-inquiry period for protocols that set no join timers (ES): while
    /// the shared join is incomplete the space re-broadcasts a full
    /// inquiry at this interval.
    pub reinquire_every: Span,
}

impl ShardConfig {
    /// The legacy full-reply handshake (`G = 1`).
    pub fn legacy() -> ShardConfig {
        ShardConfig::new(1)
    }

    /// Sharded replies over `groups` groups, per-shard quorum 1, re-inquiry
    /// every 8 ticks.
    ///
    /// # Panics
    /// Panics if `groups` is zero.
    pub fn new(groups: u32) -> ShardConfig {
        assert!(groups > 0, "shard groups must be positive");
        ShardConfig {
            groups,
            quorum: 1,
            reinquire_every: Span::ticks(8),
        }
    }

    /// Sets the per-shard responder quorum.
    ///
    /// # Panics
    /// Panics if `quorum` is zero.
    pub fn with_quorum(mut self, quorum: usize) -> ShardConfig {
        assert!(quorum > 0, "a shard quorum must be positive");
        self.quorum = quorum;
        self
    }

    /// Sets the re-inquiry period for timer-less (quorum) protocols.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn with_reinquire_every(mut self, period: Span) -> ShardConfig {
        assert!(!period.is_zero(), "re-inquiry period must be positive");
        self.reinquire_every = period;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig::legacy()
    }
}

/// A per-node multiplexer owning one [`RegisterProcess`] instance per key
/// behind a single shared join handshake. See the module docs for the
/// coalescing rules and their contract.
#[derive(Debug)]
pub struct RegisterSpace<P: RegisterProcess> {
    id: NodeId,
    regs: Vec<P>,
    /// Whether this space already emitted its single `JoinComplete`.
    join_done: bool,
    /// Reused scratch for the instances' effect lists.
    scratch: Vec<Effect<P::Msg, P::Val>>,
    /// Join-reply sharding (`groups == 1` = legacy full replies).
    shard: ShardConfig,
    /// This process's responder shard (`shard_of_node(id, groups)`).
    my_shard: u32,
    /// Whether this joiner has broadcast its (shared) inquiry yet — shard
    /// gating applies only from then on.
    inquired: bool,
    /// The coalesced inquiry payload, kept for re-inquiries.
    last_inquiry: Option<P::Msg>,
    /// Per-shard distinct responders whose batches covered that shard's
    /// keys (joiner-side quorum tracking; empty unless `groups > 1`).
    shard_heard: Vec<BTreeSet<NodeId>>,
    /// `(inner tag, delay)` of shared join timers armed so far, so a
    /// withheld (or zero-reply-intercepted) expiry can re-arm itself.
    join_timer_delays: Vec<(u64, Span)>,
    /// Whether the space's own re-inquiry timer is outstanding.
    reinquire_armed: bool,
    /// Unsharded join-retransmit policy (`None` = pre-retransmit path).
    /// Inert while `groups > 1` — sharded handshakes already re-fire via
    /// the withheld-expiry / re-inquiry machinery.
    retransmit: Option<RetransmitConfig>,
    /// Whether the silence ([`RETRANSMIT_TAG`]) timer is outstanding.
    retransmit_armed: bool,
    /// Consecutive silent beats (the backoff exponent, plateaued).
    retransmit_attempts: u32,
    /// Zero-reply interceptions consumed (timer-driven joins).
    retransmit_used: u32,
    /// Reply count at the last silence beat (progress detection).
    retransmit_seen: usize,
}

/// One target's pending fan-in replies: `(target, per-key payloads)`.
type FanGroup<M> = (NodeId, Vec<(RegisterId, M)>);

/// Per-call routing context: collects the joins' coalescable effects
/// (shared broadcast, shared timers) and — during multi-instance fan-in —
/// the per-target reply batches, flushed in deterministic order at the end
/// of the space-level step.
struct StepCtx<M, V> {
    out: Vec<SpaceEffect<SpaceMsg<M>, V>>,
    /// First join-phase broadcast payload of this step, if any, with its
    /// `full` flag (false for a fresh sharded inquiry, true for
    /// re-inquiries — the starvation fallback).
    join_broadcast: Option<(M, bool)>,
    /// Distinct `(delay, tag)` join-phase timer requests of this step.
    join_timers: Vec<(Span, u64)>,
    /// Per-target send groups (fan-in batching); insertion-ordered.
    fan_sends: Option<Vec<FanGroup<M>>>,
    /// Emit single-entry fan-in groups as `Batch` anyway (sharded joins:
    /// the joiner counts per-shard quorums by batch content, so join
    /// replies must be identifiable on the wire even when a shard owns
    /// one key). Never set when `groups == 1`.
    force_batch: bool,
    /// Whether all instances became active during this step.
    join_completed: bool,
}

impl<M, V> StepCtx<M, V> {
    fn new(batch_fan_in: bool, force_batch: bool) -> StepCtx<M, V> {
        StepCtx {
            out: Vec::new(),
            join_broadcast: None,
            join_timers: Vec::new(),
            fan_sends: batch_fan_in.then(Vec::new),
            force_batch: batch_fan_in && force_batch,
            join_completed: false,
        }
    }
}

impl<P: RegisterProcess> RegisterSpace<P> {
    /// A space whose instances are already active (bootstrap members).
    ///
    /// # Panics
    /// Panics if `regs` is empty, the instances disagree on identity, or
    /// any instance is not active.
    pub fn new_bootstrap(regs: Vec<P>) -> RegisterSpace<P> {
        let mut space = RegisterSpace::assemble(regs);
        assert!(
            space.regs.iter().all(|r| r.is_active()),
            "bootstrap instances must be active"
        );
        // Bootstrap spaces run no handshake: steady-state routing from the
        // first effect (the runtime may never call `on_enter` on them).
        space.join_done = true;
        space
    }

    /// A space about to enter the system: every instance runs its join
    /// through the shared handshake.
    ///
    /// # Panics
    /// Panics if `regs` is empty or the instances disagree on identity.
    pub fn new_joiner(regs: Vec<P>) -> RegisterSpace<P> {
        RegisterSpace::assemble(regs)
    }

    fn assemble(regs: Vec<P>) -> RegisterSpace<P> {
        assert!(!regs.is_empty(), "a register space needs at least one key");
        let id = regs[0].id();
        assert!(
            regs.iter().all(|r| r.id() == id),
            "all instances of a space belong to one process"
        );
        RegisterSpace {
            id,
            regs,
            join_done: false,
            scratch: Vec::new(),
            shard: ShardConfig::legacy(),
            my_shard: 0,
            inquired: false,
            last_inquiry: None,
            shard_heard: Vec::new(),
            join_timer_delays: Vec::new(),
            reinquire_armed: false,
            retransmit: None,
            retransmit_armed: false,
            retransmit_attempts: 0,
            retransmit_used: 0,
            retransmit_seen: 0,
        }
    }

    /// Installs a join-reply shard configuration. `groups` is clamped to
    /// the key count (a shard owning no keys answers nothing and gates
    /// nothing); a clamped-to-1 (or explicit `G = 1`) config leaves the
    /// space on the legacy full-reply path.
    pub fn with_shards(mut self, config: ShardConfig) -> RegisterSpace<P> {
        let groups = config.groups.min(self.regs.len() as u32).max(1);
        self.shard = ShardConfig { groups, ..config };
        self.my_shard = shard_of_node(self.id, groups);
        self.shard_heard = if groups > 1 {
            vec![BTreeSet::new(); groups as usize]
        } else {
            Vec::new()
        };
        self
    }

    /// Installs (or clears) the bounded join-retransmit policy. Only an
    /// unsharded (`G = 1`) handshake uses it; see [`RetransmitConfig`].
    pub fn with_retransmit(mut self, config: Option<RetransmitConfig>) -> RegisterSpace<P> {
        self.retransmit = config;
        self
    }

    /// The effective shard configuration (groups clamped to the key count).
    pub fn shard_config(&self) -> ShardConfig {
        self.shard
    }

    /// This process's responder shard.
    pub fn responder_shard(&self) -> u32 {
        self.my_shard
    }

    /// The instance backing `key`.
    pub fn register(&self, key: RegisterId) -> &P {
        &self.regs[key.as_raw() as usize]
    }

    /// Whether `shard` met its reply quorum (joiner-side tracking; only
    /// meaningful while `groups > 1`).
    fn shard_quorum_met(&self, shard: u32) -> bool {
        self.shard_heard[shard as usize].len() >= self.shard.quorum
    }

    /// Total join replies gathered by still-joining instances, if any
    /// instance reports a count ([`RegisterProcess::join_replies`]).
    fn joining_replies(&self) -> Option<usize> {
        let mut total = None;
        for r in &self.regs {
            if !r.is_active() {
                if let Some(n) = r.join_replies() {
                    total = Some(total.unwrap_or(0) + n);
                }
            }
        }
        total
    }

    /// The silence timer fired (unsharded timer-less joins): re-broadcast
    /// the inquiry if no reply arrived since the last beat, back the
    /// window off, and re-arm — the spaced mirror of
    /// [`SoloSpace::retransmit_fire`].
    fn retransmit_fire(&mut self) -> Vec<SpaceEffect<SpaceMsg<P::Msg>, P::Val>> {
        self.retransmit_armed = false;
        let Some(cfg) = self.retransmit else {
            return Vec::new();
        };
        if self.join_done {
            return Vec::new();
        }
        let heard = self.joining_replies().unwrap_or(0);
        let silent = heard <= self.retransmit_seen;
        self.retransmit_seen = heard;
        let mut out = Vec::new();
        if silent {
            if let Some(inner) = self.last_inquiry.clone() {
                out.push(SpaceEffect::Broadcast {
                    msg: SpaceMsg::JoinAll { inner, full: false },
                });
                out.push(SpaceEffect::Retransmit);
            }
            self.retransmit_attempts = (self.retransmit_attempts + 1).min(cfg.budget);
        } else {
            self.retransmit_attempts = 0;
        }
        out.push(SpaceEffect::SetTimer {
            delay: cfg.backoff(self.retransmit_attempts),
            tag: RETRANSMIT_TAG,
        });
        self.retransmit_armed = true;
        out
    }

    /// Whether an expiring shared join wait must be intercepted (unsharded
    /// timer-driven joins): the inquiry is out, every joining instance
    /// gathered zero replies, and retry budget remains.
    fn intercepts(&self, inner_tag: u64) -> bool {
        let Some(cfg) = self.retransmit else {
            return false;
        };
        self.shard.groups == 1
            && !self.join_done
            && self.inquired
            && self.retransmit_used < cfg.budget
            && self.joining_replies() == Some(0)
            && self.join_timer_delays.iter().any(|&(t, _)| t == inner_tag)
    }

    /// Routes one instance's raw effects into the step context.
    fn route(
        &mut self,
        key: RegisterId,
        ctx: &mut StepCtx<P::Msg, P::Val>,
        effects: &mut Vec<Effect<P::Msg, P::Val>>,
    ) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => match &mut ctx.fan_sends {
                    Some(groups) => match groups.iter_mut().find(|(t, _)| *t == to) {
                        Some((_, entries)) => entries.push((key, msg)),
                        None => groups.push((to, vec![(key, msg)])),
                    },
                    None => ctx.out.push(SpaceEffect::Send {
                        to,
                        msg: SpaceMsg::Keyed { key, inner: msg },
                    }),
                },
                Effect::Broadcast { msg } => {
                    if self.join_done {
                        ctx.out.push(SpaceEffect::Broadcast {
                            msg: SpaceMsg::Keyed { key, inner: msg },
                        });
                    } else if ctx.join_broadcast.is_none() {
                        // Shared handshake: one inquiry covers every key
                        // (join-phase broadcasts are key-agnostic; module
                        // docs, contract 1). The payload is remembered for
                        // re-inquiries and retransmits; the first sharded
                        // inquiry asks each responder only for its shard.
                        self.inquired = true;
                        self.last_inquiry = Some(msg.clone());
                        ctx.join_broadcast = Some((msg, false));
                    }
                }
                Effect::SetTimer { delay, tag } => {
                    debug_assert!(tag <= INNER_TAG_MASK, "inner timer tags must fit 32 bits");
                    if self.join_done {
                        ctx.out.push(SpaceEffect::SetTimer {
                            delay,
                            tag: (u64::from(key.as_raw()) << KEY_TAG_SHIFT) | tag,
                        });
                    } else if !ctx.join_timers.contains(&(delay, tag)) {
                        // Shared handshake: still-joining instances request
                        // uniform waits (contract 2) — arm each once.
                        ctx.join_timers.push((delay, tag));
                    }
                }
                Effect::JoinComplete => {
                    if !self.join_done && self.regs.iter().all(|r| r.is_active()) {
                        self.join_done = true;
                        ctx.join_completed = true;
                        ctx.out.push(SpaceEffect::JoinComplete);
                    }
                }
                Effect::OpComplete { op, outcome } => {
                    ctx.out.push(SpaceEffect::OpComplete { key, op, outcome });
                }
                Effect::Note(text) => ctx.out.push(SpaceEffect::Note { key, text }),
            }
        }
    }

    /// Flushes the step context into the final effect list: direct effects
    /// first (their order is the instances' own), then the coalesced join
    /// broadcast, shared timers, and batched fan-in replies. Sharded
    /// spaces additionally record armed join-timer delays (for withheld
    /// expiries to re-arm) and keep a re-inquiry timer outstanding for
    /// protocols that arm none themselves.
    fn flush(
        &mut self,
        mut ctx: StepCtx<P::Msg, P::Val>,
    ) -> Vec<SpaceEffect<SpaceMsg<P::Msg>, P::Val>> {
        let mut out = ctx.out;
        if let Some((inner, full)) = ctx.join_broadcast.take() {
            out.push(SpaceEffect::Broadcast {
                msg: SpaceMsg::JoinAll { inner, full },
            });
        }
        for (delay, tag) in ctx.join_timers.drain(..) {
            match self.join_timer_delays.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, d)) => *d = delay,
                None => self.join_timer_delays.push((tag, delay)),
            }
            out.push(SpaceEffect::SetTimer {
                delay,
                tag: SHARED_TAG | tag,
            });
        }
        if self.shard.groups > 1
            && !self.join_done
            && self.inquired
            && !self.reinquire_armed
            && self.join_timer_delays.is_empty()
        {
            // A timer-less (quorum) protocol inquired: the space itself
            // re-fires the inquiry until every shard has answered.
            out.push(SpaceEffect::SetTimer {
                delay: self.shard.reinquire_every,
                tag: REINQUIRE_TAG,
            });
            self.reinquire_armed = true;
        }
        if let Some(cfg) = self.retransmit {
            if self.shard.groups == 1
                && !self.join_done
                && self.inquired
                && !self.retransmit_armed
                && self.join_timer_delays.is_empty()
            {
                // Unsharded timer-less join: arm the silence timer (the
                // solo path arms the same one — `observe_join_step`).
                out.push(SpaceEffect::SetTimer {
                    delay: cfg.backoff(self.retransmit_attempts),
                    tag: RETRANSMIT_TAG,
                });
                self.retransmit_armed = true;
                self.retransmit_seen = self.joining_replies().unwrap_or(0);
            }
        }
        if let Some(groups) = ctx.fan_sends.take() {
            for (to, mut entries) in groups {
                debug_assert!(!entries.is_empty());
                if entries.len() == 1 && !ctx.force_batch {
                    let (key, inner) = entries.pop().expect("checked non-empty");
                    out.push(SpaceEffect::Send {
                        to,
                        msg: SpaceMsg::Keyed { key, inner },
                    });
                } else {
                    out.push(SpaceEffect::Send {
                        to,
                        msg: SpaceMsg::Batch { replies: entries },
                    });
                }
            }
        }
        out
    }

    /// Runs `step` on the instance backing `key`, routing its effects.
    fn step_one(
        &mut self,
        key: RegisterId,
        ctx: &mut StepCtx<P::Msg, P::Val>,
        step: impl FnOnce(&mut P, &mut Vec<Effect<P::Msg, P::Val>>),
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        debug_assert!(scratch.is_empty());
        step(&mut self.regs[key.as_raw() as usize], &mut scratch);
        self.route(key, ctx, &mut scratch);
        self.scratch = scratch;
    }
}

impl<P: RegisterProcess> RegisterSpaceProcess for RegisterSpace<P> {
    type Msg = SpaceMsg<P::Msg>;
    type Val = P::Val;

    fn id(&self) -> NodeId {
        self.id
    }

    fn is_active(&self) -> bool {
        self.join_done
    }

    fn key_count(&self) -> u32 {
        self.regs.len() as u32
    }

    fn on_enter(&mut self, now: Time) -> Vec<SpaceEffect<Self::Msg, Self::Val>> {
        if self.join_done {
            // Bootstrap member: already active (mirrors the single-register
            // protocols' bootstrap `on_enter`).
            return vec![SpaceEffect::JoinComplete];
        }
        // A multi-instance step: per-target sends batch (keys > 1), so the
        // handshake costs one physical message per counterpart however
        // many keys the space owns.
        let mut ctx = StepCtx::new(self.regs.len() > 1, self.shard.groups > 1);
        for raw in 0..self.regs.len() as u32 {
            self.step_one(RegisterId::from_raw(raw), &mut ctx, |reg, scratch| {
                scratch.append(&mut reg.on_enter(now));
            });
        }
        self.flush(ctx)
    }

    fn on_message_into(
        &mut self,
        now: Time,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Vec<SpaceEffect<Self::Msg, Self::Val>>,
    ) {
        match msg {
            SpaceMsg::Keyed { key, inner } => {
                let mut ctx = StepCtx::new(false, false);
                self.step_one(key, &mut ctx, |reg, scratch| {
                    reg.on_message_into(now, from, inner, scratch);
                });
                out.append(&mut self.flush(ctx));
            }
            SpaceMsg::JoinAll { inner, full } => {
                // Fan the shared inquiry into every instance — or, on a
                // sharded space answering a non-full inquiry, into this
                // responder's shard only. Each key's answers to one target
                // coalesce into a single Batch (the "all keys' states in
                // one reply" half of the handshake; `K/G` of them when
                // sharded). A 1-key space batches nothing, staying
                // message-for-message identical to the solo path.
                let groups = self.shard.groups;
                let mut ctx = StepCtx::new(self.regs.len() > 1, groups > 1);
                for raw in 0..self.regs.len() as u32 {
                    if groups > 1
                        && !full
                        && shard_of_key(RegisterId::from_raw(raw), groups) != self.my_shard
                    {
                        continue;
                    }
                    let inner = inner.clone();
                    self.step_one(RegisterId::from_raw(raw), &mut ctx, |reg, scratch| {
                        reg.on_message_into(now, from, inner, scratch);
                    });
                }
                out.append(&mut self.flush(ctx));
            }
            SpaceMsg::Batch { replies } => {
                // Joiner-side shard bookkeeping: a batch from `from`
                // covers the shards of the keys it carries (its own shard
                // for a sharded reply, every shard for a full-fallback
                // one).
                if self.shard.groups > 1 && !self.join_done {
                    for (key, _) in &replies {
                        let s = shard_of_key(*key, self.shard.groups) as usize;
                        self.shard_heard[s].insert(from);
                    }
                }
                let mut ctx = StepCtx::new(self.regs.len() > 1, self.shard.groups > 1);
                for (key, inner) in replies {
                    self.step_one(key, &mut ctx, |reg, scratch| {
                        reg.on_message_into(now, from, inner, scratch);
                    });
                }
                out.append(&mut self.flush(ctx));
            }
        }
    }

    fn on_timer(&mut self, now: Time, tag: u64) -> Vec<SpaceEffect<Self::Msg, Self::Val>> {
        if tag == RETRANSMIT_TAG {
            // The unsharded silence timer — never forwarded to instances.
            return self.retransmit_fire();
        }
        if tag == REINQUIRE_TAG {
            // The space's own re-inquiry beat (timer-less protocols): while
            // the shared join is incomplete, re-broadcast a full inquiry —
            // any active process answers for every key, so a starved shard
            // falls back to the legacy transfer instead of wedging.
            self.reinquire_armed = false;
            if self.join_done {
                return Vec::new();
            }
            let mut out = Vec::new();
            if let Some(inner) = self.last_inquiry.clone() {
                out.push(SpaceEffect::Broadcast {
                    msg: SpaceMsg::JoinAll { inner, full: true },
                });
            }
            out.push(SpaceEffect::SetTimer {
                delay: self.shard.reinquire_every,
                tag: REINQUIRE_TAG,
            });
            self.reinquire_armed = true;
            return out;
        }
        if tag & SHARED_TAG != 0 {
            // A shared join-phase timer: dispatch to every still-joining
            // instance (exactly the requesters; module docs, contract 2) —
            // except, once the sharded inquiry is out, instances of shards
            // still short of their reply quorum: those stay joining and the
            // timer re-fires the inquiry (full fallback) and re-arms.
            // Multi-instance step → per-target sends batch, so postponed
            // replies flushed at activation stay one message per inquirer.
            let inner_tag = tag & !SHARED_TAG;
            if self.intercepts(inner_tag) {
                // Unsharded zero-reply expiry: re-fire the inquiry and
                // re-arm the same wait instead of dispatching (which would
                // blind-activate every key at ⊥) — the spaced mirror of the
                // solo interception, effect for effect.
                self.retransmit_used += 1;
                let mut out = Vec::new();
                if let Some(inner) = self.last_inquiry.clone() {
                    out.push(SpaceEffect::Broadcast {
                        msg: SpaceMsg::JoinAll { inner, full: false },
                    });
                    out.push(SpaceEffect::Retransmit);
                }
                if let Some(&(t, delay)) = self
                    .join_timer_delays
                    .iter()
                    .find(|&&(t, _)| t == inner_tag)
                {
                    out.push(SpaceEffect::SetTimer {
                        delay,
                        tag: SHARED_TAG | t,
                    });
                }
                return out;
            }
            let groups = self.shard.groups;
            // Snapshot the gate before stepping: the first dispatched
            // instance may broadcast the inquiry (flipping `inquired`)
            // mid-step, and pre-inquiry waits must dispatch to every key.
            let gate = groups > 1 && self.inquired && !self.join_done;
            let mut ctx = StepCtx::new(self.regs.len() > 1, groups > 1);
            let mut withheld = false;
            for raw in 0..self.regs.len() as u32 {
                if self.regs[raw as usize].is_active() {
                    continue;
                }
                if gate && !self.shard_quorum_met(shard_of_key(RegisterId::from_raw(raw), groups)) {
                    withheld = true;
                    continue;
                }
                self.step_one(RegisterId::from_raw(raw), &mut ctx, |reg, scratch| {
                    scratch.append(&mut reg.on_timer(now, inner_tag));
                });
            }
            if withheld {
                debug_assert!(groups > 1, "only sharded spaces withhold expiries");
                if ctx.join_broadcast.is_none() {
                    if let Some(inner) = self.last_inquiry.clone() {
                        ctx.join_broadcast = Some((inner, true));
                    }
                }
                if let Some(&(t, delay)) = self
                    .join_timer_delays
                    .iter()
                    .find(|&&(t, _)| t == inner_tag)
                {
                    if !ctx.join_timers.contains(&(delay, t)) {
                        ctx.join_timers.push((delay, t));
                    }
                }
            }
            self.flush(ctx)
        } else {
            let key = RegisterId::from_raw((tag >> KEY_TAG_SHIFT) as u32);
            let inner_tag = tag & INNER_TAG_MASK;
            let mut ctx = StepCtx::new(false, false);
            self.step_one(key, &mut ctx, |reg, scratch| {
                scratch.append(&mut reg.on_timer(now, inner_tag));
            });
            self.flush(ctx)
        }
    }

    fn on_read(
        &mut self,
        now: Time,
        key: RegisterId,
        op: OpId,
    ) -> Vec<SpaceEffect<Self::Msg, Self::Val>> {
        let mut ctx = StepCtx::new(false, false);
        self.step_one(key, &mut ctx, |reg, scratch| {
            scratch.append(&mut reg.on_read(now, op));
        });
        self.flush(ctx)
    }

    fn on_write(
        &mut self,
        now: Time,
        key: RegisterId,
        op: OpId,
        value: Self::Val,
    ) -> Vec<SpaceEffect<Self::Msg, Self::Val>> {
        let mut ctx = StepCtx::new(false, false);
        self.step_one(key, &mut ctx, |reg, scratch| {
            scratch.append(&mut reg.on_write(now, op, value));
        });
        self.flush(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::es::{EsConfig, EsMsg, EsRegister, Timestamp};
    use crate::sync::{SyncConfig, SyncMsg, SyncRegister};

    fn nid(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn oid(i: u64) -> OpId {
        OpId::from_raw(i)
    }

    fn key(k: u32) -> RegisterId {
        RegisterId::from_raw(k)
    }

    fn cfg() -> SyncConfig {
        SyncConfig::new(Span::ticks(3))
    }

    fn bootstrap_space(id: u64, keys: u32) -> RegisterSpace<SyncRegister<u64>> {
        RegisterSpace::new_bootstrap(
            (0..keys)
                .map(|k| SyncRegister::new_bootstrap(nid(id), cfg(), u64::from(100 + k)))
                .collect(),
        )
    }

    fn joiner_space(id: u64, keys: u32) -> RegisterSpace<SyncRegister<u64>> {
        RegisterSpace::new_joiner(
            (0..keys)
                .map(|_| SyncRegister::new_joiner(nid(id), cfg(), oid(900 + id)))
                .collect(),
        )
    }

    #[test]
    fn bootstrap_space_is_active_and_reads_per_key() {
        let mut s = bootstrap_space(0, 4);
        assert!(s.is_active());
        assert_eq!(s.key_count(), 4);
        let effects = s.on_read(Time::ZERO, key(2), oid(1));
        assert_eq!(
            effects,
            vec![SpaceEffect::OpComplete {
                key: key(2),
                op: oid(1),
                outcome: OpOutcome::Read(Some(102)),
            }]
        );
    }

    #[test]
    fn bootstrap_enter_emits_one_join_complete() {
        let mut s = bootstrap_space(0, 3);
        let effects = s.on_enter(Time::ZERO);
        assert_eq!(effects, vec![SpaceEffect::JoinComplete]);
    }

    #[test]
    fn write_is_tagged_with_its_key() {
        let mut s = bootstrap_space(0, 4);
        let effects = s.on_write(Time::ZERO, key(3), oid(1), 7);
        assert!(matches!(
            &effects[0],
            SpaceEffect::Broadcast {
                msg: SpaceMsg::Keyed { key: k, inner: SyncMsg::Write { value: 7, .. } }
            } if *k == key(3)
        ));
        // The write's wait(δ) timer is key-partitioned.
        let SpaceEffect::SetTimer { tag, .. } = effects[1] else {
            panic!("expected timer, got {:?}", effects[1]);
        };
        assert_eq!(tag >> KEY_TAG_SHIFT, 3);
        // Expiry routes back to key 3 only: the write completes there.
        let done = s.on_timer(Time::at(3), tag);
        assert!(matches!(
            done.as_slice(),
            [SpaceEffect::OpComplete { key: k, op, outcome: OpOutcome::WriteOk }]
                if *k == key(3) && *op == oid(1)
        ));
    }

    #[test]
    fn joiner_shares_one_handshake() {
        let mut s = joiner_space(9, 8);
        // Enter: all 8 instances wait δ — one shared timer.
        let enter = s.on_enter(Time::ZERO);
        assert_eq!(enter.len(), 1);
        let SpaceEffect::SetTimer { tag, delay } = enter[0] else {
            panic!("expected shared timer, got {:?}", enter[0]);
        };
        assert_ne!(
            tag & SHARED_TAG,
            0,
            "join timers live in the shared partition"
        );
        assert_eq!(delay, Span::ticks(3));
        // Expiry: all 8 inquire — one JoinAll broadcast, one shared 2δ wait.
        let inquire = s.on_timer(Time::at(3), tag);
        assert_eq!(
            inquire.len(),
            2,
            "one broadcast + one shared timer: {inquire:?}"
        );
        assert!(matches!(
            inquire[0],
            SpaceEffect::Broadcast {
                msg: SpaceMsg::JoinAll {
                    inner: SyncMsg::Inquiry,
                    full: false
                }
            }
        ));
        let SpaceEffect::SetTimer { tag: t2, .. } = inquire[1] else {
            panic!("expected shared inquiry timer");
        };
        // No replies arrive; expiry activates every key and completes the
        // space join exactly once.
        let done = s.on_timer(Time::at(9), t2);
        assert_eq!(done, vec![SpaceEffect::JoinComplete]);
        assert!(s.is_active());
    }

    #[test]
    fn join_all_fans_in_and_batches_the_replies() {
        let mut responder = bootstrap_space(0, 5);
        let effects = responder.on_message(
            Time::at(1),
            nid(9),
            SpaceMsg::JoinAll {
                inner: SyncMsg::Inquiry,
                full: false,
            },
        );
        // Five per-key replies to one joiner → one physical Batch.
        assert_eq!(effects.len(), 1);
        let SpaceEffect::Send {
            to,
            msg: SpaceMsg::Batch { replies },
        } = &effects[0]
        else {
            panic!("expected one batched reply, got {effects:?}");
        };
        assert_eq!(*to, nid(9));
        assert_eq!(replies.len(), 5);
        assert!(replies
            .iter()
            .enumerate()
            .all(|(i, (k, _))| *k == key(i as u32)));
    }

    #[test]
    fn batch_delivery_routes_each_entry_to_its_key() {
        let mut s = joiner_space(9, 2);
        let enter = s.on_enter(Time::ZERO);
        let SpaceEffect::SetTimer { tag, .. } = enter[0] else {
            panic!()
        };
        let inquire = s.on_timer(Time::at(3), tag);
        let SpaceEffect::SetTimer { tag: t2, .. } = inquire[1] else {
            panic!()
        };
        // A responder's batch carries distinct values per key.
        s.on_message_into(
            Time::at(5),
            nid(0),
            SpaceMsg::Batch {
                replies: vec![
                    (
                        key(0),
                        SyncMsg::Reply {
                            value: Some(100),
                            sn: 0,
                        },
                    ),
                    (
                        key(1),
                        SyncMsg::Reply {
                            value: Some(101),
                            sn: 0,
                        },
                    ),
                ],
            },
            &mut Vec::new(),
        );
        let done = s.on_timer(Time::at(9), t2);
        assert_eq!(done, vec![SpaceEffect::JoinComplete]);
        assert_eq!(s.register(key(0)).local_value(), Some(&100));
        assert_eq!(s.register(key(1)).local_value(), Some(&101));
    }

    #[test]
    fn one_key_space_batches_nothing() {
        let mut responder = bootstrap_space(0, 1);
        let effects = responder.on_message(
            Time::at(1),
            nid(9),
            SpaceMsg::JoinAll {
                inner: SyncMsg::Inquiry,
                full: false,
            },
        );
        // A single reply stays a Keyed unicast — message-for-message
        // identical to the solo path.
        assert!(matches!(
            effects.as_slice(),
            [SpaceEffect::Send {
                msg: SpaceMsg::Keyed { .. },
                ..
            }]
        ));
    }

    #[test]
    fn keyed_write_reaches_only_its_instance() {
        let mut s = bootstrap_space(0, 3);
        s.on_message_into(
            Time::at(1),
            nid(1),
            SpaceMsg::Keyed {
                key: key(1),
                inner: SyncMsg::Write { value: 7, sn: 5 },
            },
            &mut Vec::new(),
        );
        assert_eq!(s.register(key(0)).local_value(), Some(&100));
        assert_eq!(s.register(key(1)).local_value(), Some(&7));
        assert_eq!(s.register(key(2)).local_value(), Some(&102));
    }

    #[test]
    fn write_during_wait_still_gets_other_keys_via_the_shared_inquiry() {
        // Key 0 adopts a WRITE during the initial δ wait, key 1 does not:
        // the shared handshake still inquires (for key 1) and the space
        // completes only when both keys are active.
        let mut s = joiner_space(9, 2);
        let enter = s.on_enter(Time::ZERO);
        let SpaceEffect::SetTimer { tag, .. } = enter[0] else {
            panic!()
        };
        s.on_message_into(
            Time::at(1),
            nid(0),
            SpaceMsg::Keyed {
                key: key(0),
                inner: SyncMsg::Write { value: 55, sn: 1 },
            },
            &mut Vec::new(),
        );
        let after_wait = s.on_timer(Time::at(3), tag);
        // Key 0 became active (no broadcast from it); key 1 inquires.
        assert!(
            after_wait.iter().any(|e| matches!(
                e,
                SpaceEffect::Broadcast {
                    msg: SpaceMsg::JoinAll { .. }
                }
            )),
            "key 1 still inquires: {after_wait:?}"
        );
        assert!(
            !after_wait.contains(&SpaceEffect::JoinComplete),
            "space join incomplete while key 1 is joining"
        );
        let SpaceEffect::SetTimer { tag: t2, .. } = *after_wait
            .iter()
            .find(|e| matches!(e, SpaceEffect::SetTimer { .. }))
            .expect("shared inquiry timer")
        else {
            unreachable!()
        };
        let done = s.on_timer(Time::at(9), t2);
        assert_eq!(done, vec![SpaceEffect::JoinComplete]);
        assert_eq!(s.register(key(0)).local_value(), Some(&55));
    }

    #[test]
    fn solo_space_is_a_transparent_adapter() {
        let mut solo = SoloSpace::new(SyncRegister::<u64>::new_bootstrap(nid(0), cfg(), 5));
        assert!(solo.is_active());
        assert_eq!(solo.key_count(), 1);
        let effects = solo.on_read(Time::ZERO, RegisterId::ZERO, oid(1));
        assert_eq!(
            effects,
            vec![SpaceEffect::OpComplete {
                key: RegisterId::ZERO,
                op: oid(1),
                outcome: OpOutcome::Read(Some(5)),
            }]
        );
        // Raw protocol messages, no key tags.
        let mut out = Vec::new();
        solo.on_message_into(Time::at(1), nid(7), SyncMsg::Inquiry, &mut out);
        assert!(matches!(
            out.as_slice(),
            [SpaceEffect::Send { to, msg: SyncMsg::Reply { .. } }] if *to == nid(7)
        ));
    }

    fn sharded_bootstrap(id: u64, keys: u32, groups: u32) -> RegisterSpace<SyncRegister<u64>> {
        bootstrap_space(id, keys).with_shards(ShardConfig::new(groups))
    }

    fn sharded_joiner(id: u64, keys: u32, groups: u32) -> RegisterSpace<SyncRegister<u64>> {
        joiner_space(id, keys).with_shards(ShardConfig::new(groups))
    }

    /// A batched reply from `from` covering the keys of its shard.
    fn shard_batch(from: u64, keys: u32, groups: u32, value: u64) -> SpaceMsg<SyncMsg<u64>> {
        SpaceMsg::Batch {
            replies: (0..keys)
                .filter(|&k| shard_of_key(key(k), groups) == shard_of_node(nid(from), groups))
                .map(|k| {
                    (
                        key(k),
                        SyncMsg::Reply {
                            value: Some(value),
                            sn: 1,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn shard_groups_clamp_to_the_key_count() {
        let s = sharded_bootstrap(0, 4, 64);
        assert_eq!(s.shard_config().groups, 4);
        let s1 = sharded_bootstrap(0, 1, 8);
        assert_eq!(s1.shard_config().groups, 1, "a 1-key space cannot shard");
    }

    #[test]
    fn sharded_responder_answers_only_its_shard() {
        let groups = 2;
        let keys = 6;
        let mut responder = sharded_bootstrap(0, keys, groups);
        let mine = responder.responder_shard();
        let effects = responder.on_message(
            Time::at(1),
            nid(9),
            SpaceMsg::JoinAll {
                inner: SyncMsg::Inquiry,
                full: false,
            },
        );
        let [SpaceEffect::Send {
            to,
            msg: SpaceMsg::Batch { replies },
        }] = effects.as_slice()
        else {
            panic!("expected one forced batch, got {effects:?}");
        };
        assert_eq!(*to, nid(9));
        assert_eq!(replies.len() as u32, keys / groups);
        assert!(replies
            .iter()
            .all(|(k, _)| shard_of_key(*k, groups) == mine));
    }

    #[test]
    fn full_reinquiry_is_answered_for_every_key() {
        let mut responder = sharded_bootstrap(0, 6, 2);
        let effects = responder.on_message(
            Time::at(1),
            nid(9),
            SpaceMsg::JoinAll {
                inner: SyncMsg::Inquiry,
                full: true,
            },
        );
        let [SpaceEffect::Send {
            msg: SpaceMsg::Batch { replies },
            ..
        }] = effects.as_slice()
        else {
            panic!("expected one batch, got {effects:?}");
        };
        assert_eq!(replies.len(), 6, "the fallback is the legacy full reply");
    }

    #[test]
    fn starved_shard_withholds_activation_and_refires_the_inquiry() {
        let groups = 2;
        let keys = 4;
        let mut s = sharded_joiner(9, keys, groups);
        // δ wait → inquiry (sharded, not full) + 2δ wait.
        let enter = s.on_enter(Time::ZERO);
        let SpaceEffect::SetTimer { tag, .. } = enter[0] else {
            panic!()
        };
        let inquire = s.on_timer(Time::at(3), tag);
        assert!(matches!(
            inquire[0],
            SpaceEffect::Broadcast {
                msg: SpaceMsg::JoinAll { full: false, .. }
            }
        ));
        let SpaceEffect::SetTimer { tag: t2, delay } = inquire[1] else {
            panic!()
        };
        assert_eq!(delay, Span::ticks(6));
        // Only the responder covering shard 0 answers; find one per shard.
        let in_shard = |g: u32| {
            (0..64)
                .find(|&i| shard_of_node(nid(i), groups) == g)
                .unwrap()
        };
        let (r0, r1) = (in_shard(0), in_shard(1));
        s.on_message_into(
            Time::at(5),
            nid(r0),
            shard_batch(r0, keys, groups, 100),
            &mut Vec::new(),
        );
        // 2δ expiry: shard 0's keys activate, shard 1's are withheld; the
        // timer re-fires a *full* inquiry and re-arms itself.
        let effects = s.on_timer(Time::at(9), t2);
        assert!(
            !s.is_active(),
            "space join incomplete while shard 1 starves"
        );
        assert!(
            effects.iter().any(|e| matches!(
                e,
                SpaceEffect::Broadcast {
                    msg: SpaceMsg::JoinAll { full: true, .. }
                }
            )),
            "withheld shard re-fires a full inquiry: {effects:?}"
        );
        let rearm = effects
            .iter()
            .find_map(|e| match e {
                SpaceEffect::SetTimer { tag, delay } => Some((*tag, *delay)),
                _ => None,
            })
            .expect("re-armed shared timer");
        assert_eq!(rearm.1, Span::ticks(6), "same 2δ wait re-armed");
        assert!(
            !effects.contains(&SpaceEffect::JoinComplete),
            "no JoinComplete while a shard is short"
        );
        // Shard 1's responder answers the re-inquiry; the re-armed expiry
        // completes the join, and the adopted values are per shard.
        s.on_message_into(
            Time::at(11),
            nid(r1),
            shard_batch(r1, keys, groups, 200),
            &mut Vec::new(),
        );
        let done = s.on_timer(Time::at(15), rearm.0);
        assert!(done.contains(&SpaceEffect::JoinComplete), "{done:?}");
        assert!(s.is_active());
        for k_raw in 0..keys {
            let expect = if shard_of_key(key(k_raw), groups) == 0 {
                100
            } else {
                200
            };
            assert_eq!(s.register(key(k_raw)).local_value(), Some(&expect));
        }
    }

    #[test]
    fn shard_quorum_counts_distinct_responders() {
        let groups = 2;
        let mut s =
            sharded_joiner(9, 4, groups).with_shards(ShardConfig::new(groups).with_quorum(2));
        let enter = s.on_enter(Time::ZERO);
        let SpaceEffect::SetTimer { tag, .. } = enter[0] else {
            panic!()
        };
        let inquire = s.on_timer(Time::at(3), tag);
        let SpaceEffect::SetTimer { tag: t2, .. } = inquire[1] else {
            panic!()
        };
        // One responder per shard — quorum 2 not met anywhere, even if the
        // same responder repeats itself.
        let in_shard = |g: u32| {
            (0..64)
                .find(|&i| shard_of_node(nid(i), groups) == g)
                .unwrap()
        };
        for _ in 0..3 {
            s.on_message_into(
                Time::at(5),
                nid(in_shard(0)),
                shard_batch(in_shard(0), 4, groups, 7),
                &mut Vec::new(),
            );
        }
        let effects = s.on_timer(Time::at(9), t2);
        assert!(!s.is_active(), "one chatty responder is one vote");
        assert!(effects.iter().any(|e| matches!(
            e,
            SpaceEffect::Broadcast {
                msg: SpaceMsg::JoinAll { full: true, .. }
            }
        )));
        // A second distinct responder per shard satisfies quorum 2 — the
        // full fallback reply covers both shards at once.
        let extra = (0..64)
            .find(|&i| i != in_shard(0) && i != in_shard(1))
            .unwrap();
        s.on_message_into(
            Time::at(11),
            nid(in_shard(1)),
            shard_batch(in_shard(1), 4, groups, 8),
            &mut Vec::new(),
        );
        let full_reply = SpaceMsg::Batch {
            replies: (0..4)
                .map(|k| {
                    (
                        key(k),
                        SyncMsg::Reply {
                            value: Some(9),
                            sn: 1,
                        },
                    )
                })
                .collect(),
        };
        s.on_message_into(
            Time::at(11),
            nid(in_shard(0)),
            full_reply.clone(),
            &mut Vec::new(),
        );
        s.on_message_into(Time::at(11), nid(extra), full_reply, &mut Vec::new());
        // The withheld expiry re-armed the same shared tag; its next firing
        // finds every shard at quorum and completes the join.
        let done = s.on_timer(Time::at(15), t2);
        assert!(done.contains(&SpaceEffect::JoinComplete), "{done:?}");
    }

    #[test]
    fn one_group_sharding_is_the_legacy_handshake() {
        // G = 1 through the shard-config path produces exactly the legacy
        // effect streams: the equivalence oracle at the unit level.
        let mut legacy = bootstrap_space(0, 5);
        let mut sharded = sharded_bootstrap(0, 5, 1);
        for full in [false, true] {
            assert_eq!(
                legacy.on_message(
                    Time::at(1),
                    nid(9),
                    SpaceMsg::JoinAll {
                        inner: SyncMsg::Inquiry,
                        full
                    },
                ),
                sharded.on_message(
                    Time::at(1),
                    nid(9),
                    SpaceMsg::JoinAll {
                        inner: SyncMsg::Inquiry,
                        full
                    },
                ),
            );
        }
        let mut legacy_j = joiner_space(9, 3);
        let mut sharded_j = sharded_joiner(9, 3, 1);
        let a = legacy_j.on_enter(Time::ZERO);
        let b = sharded_j.on_enter(Time::ZERO);
        assert_eq!(a, b);
        let SpaceEffect::SetTimer { tag, .. } = a[0] else {
            panic!()
        };
        assert_eq!(
            legacy_j.on_timer(Time::at(3), tag),
            sharded_j.on_timer(Time::at(3), tag)
        );
    }

    #[test]
    fn shard_hash_is_deterministic_and_spread() {
        let groups = 16;
        let mut seen = vec![0u32; groups as usize];
        for i in 0..1000 {
            let s = shard_of_node(nid(i), groups);
            assert_eq!(s, shard_of_node(nid(i), groups));
            assert!(s < groups);
            seen[s as usize] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 20),
            "1000 nodes spread over 16 shards without starving one: {seen:?}"
        );
    }

    fn solo_sync_joiner(retransmit: Option<RetransmitConfig>) -> SoloSpace<SyncRegister<u64>> {
        SoloSpace::new(SyncRegister::new_joiner(nid(9), cfg(), oid(900)))
            .with_retransmit(retransmit)
    }

    /// Drives a solo sync joiner to its post-inquiry wait, returning the
    /// 2δ timer tag.
    fn inquire_solo_sync(s: &mut SoloSpace<SyncRegister<u64>>) -> u64 {
        let enter = s.on_enter(Time::ZERO);
        let [SpaceEffect::SetTimer { tag, .. }] = enter.as_slice() else {
            panic!("expected the δ wait, got {enter:?}");
        };
        let inquire = s.on_timer(Time::at(3), *tag);
        assert!(matches!(
            inquire[0],
            SpaceEffect::Broadcast {
                msg: SyncMsg::Inquiry
            }
        ));
        let SpaceEffect::SetTimer { tag: t2, delay } = inquire[1] else {
            panic!("expected the 2δ wait, got {inquire:?}");
        };
        assert_eq!(delay, Span::ticks(6));
        t2
    }

    #[test]
    fn solo_sync_intercepts_zero_reply_expiries_until_the_budget() {
        let rc = RetransmitConfig::after(Span::ticks(6)).with_budget(2);
        let mut s = solo_sync_joiner(Some(rc));
        let t2 = inquire_solo_sync(&mut s);
        // Two zero-reply expiries are intercepted: the inquiry re-fires and
        // the same 2δ wait is re-armed instead of dispatching the expiry.
        let mut now = 9;
        for round in 0..2 {
            let fired = s.on_timer(Time::at(now), t2);
            assert_eq!(
                fired,
                vec![
                    SpaceEffect::Broadcast {
                        msg: SyncMsg::Inquiry
                    },
                    SpaceEffect::Retransmit,
                    SpaceEffect::SetTimer {
                        delay: Span::ticks(6),
                        tag: t2,
                    },
                ],
                "interception {round}"
            );
            assert!(!s.is_active(), "still joining after interception {round}");
            now += 6;
        }
        // Budget exhausted: the next expiry dispatches normally, so the
        // paper's blind ⊥ activation is preserved — only delayed.
        let done = s.on_timer(Time::at(now), t2);
        assert!(done.contains(&SpaceEffect::JoinComplete), "{done:?}");
        assert!(s.is_active());
        assert_eq!(s.inner().local_value(), None, "blind activation is at ⊥");
    }

    #[test]
    fn solo_sync_dispatches_normally_once_a_reply_arrived() {
        let mut s = solo_sync_joiner(Some(RetransmitConfig::after(Span::ticks(6))));
        let t2 = inquire_solo_sync(&mut s);
        s.on_message_into(
            Time::at(5),
            nid(1),
            SyncMsg::Reply {
                value: Some(41),
                sn: 2,
            },
            &mut Vec::new(),
        );
        // One reply is enough to stand down: the expiry adopts and
        // activates exactly as the pre-retransmit protocol would.
        let done = s.on_timer(Time::at(9), t2);
        assert!(done.contains(&SpaceEffect::JoinComplete), "{done:?}");
        assert!(s.is_active());
        assert_eq!(s.inner().local_value(), Some(&41));
    }

    #[test]
    fn sync_retransmit_policy_is_invisible_on_a_lossless_handshake() {
        let mut plain = solo_sync_joiner(None);
        let mut with_policy = solo_sync_joiner(Some(RetransmitConfig::after(Span::ticks(6))));
        assert_eq!(plain.on_enter(Time::ZERO), with_policy.on_enter(Time::ZERO));
        let (ta, tb) = (
            inquire_solo_sync(&mut plain),
            inquire_solo_sync(&mut with_policy),
        );
        assert_eq!(ta, tb);
        for s in [&mut plain, &mut with_policy] {
            s.on_message_into(
                Time::at(5),
                nid(1),
                SyncMsg::Reply {
                    value: Some(41),
                    sn: 2,
                },
                &mut Vec::new(),
            );
        }
        // Replies landed before the wait expired: effect-for-effect
        // identical with and without the policy (the digest-equivalence
        // contract of the lossless path).
        assert_eq!(
            plain.on_timer(Time::at(9), ta),
            with_policy.on_timer(Time::at(9), tb)
        );
        assert!(plain.is_active() && with_policy.is_active());
    }

    #[test]
    fn solo_es_silence_timer_rebroadcasts_with_backoff_and_resets_on_progress() {
        // n = 3 ⇒ join quorum 2: one reply is progress but not completion.
        let ecfg = EsConfig::new(3);
        let rc = RetransmitConfig::after(Span::ticks(8)).with_budget(2);
        let mut s = SoloSpace::new(EsRegister::<u64>::new_joiner(nid(9), ecfg, oid(900)))
            .with_retransmit(Some(rc));
        // ES joins arm no timers, so the space appends its own silence
        // timer right behind the inquiry.
        assert_eq!(
            s.on_enter(Time::ZERO),
            vec![
                SpaceEffect::Broadcast {
                    msg: EsMsg::Inquiry { r_sn: 0 }
                },
                SpaceEffect::SetTimer {
                    delay: Span::ticks(8),
                    tag: RETRANSMIT_TAG,
                },
            ]
        );
        // Silent beats re-fire the inquiry and double the window (8 → 16 →
        // 32); after `budget = 2` silent beats the window plateaus at
        // `base << 2` — retries stay unbounded, backoff does not.
        for (at, next) in [(8, 16), (24, 32), (56, 32)] {
            assert_eq!(
                s.on_timer(Time::at(at), RETRANSMIT_TAG),
                vec![
                    SpaceEffect::Broadcast {
                        msg: EsMsg::Inquiry { r_sn: 0 }
                    },
                    SpaceEffect::Retransmit,
                    SpaceEffect::SetTimer {
                        delay: Span::ticks(next),
                        tag: RETRANSMIT_TAG,
                    },
                ],
                "silent beat at {at}"
            );
        }
        // One reply (below quorum) is progress: the next beat re-arms at
        // the base window without re-broadcasting.
        s.on_message_into(
            Time::at(60),
            nid(1),
            EsMsg::Reply {
                value: Some(7),
                ts: Timestamp::INITIAL,
                r_sn: 0,
            },
            &mut Vec::new(),
        );
        assert!(!s.is_active());
        assert_eq!(
            s.on_timer(Time::at(88), RETRANSMIT_TAG),
            vec![SpaceEffect::SetTimer {
                delay: Span::ticks(8),
                tag: RETRANSMIT_TAG,
            }]
        );
        // Quorum reached: the join completes, and the stale beat stands
        // down without re-arming.
        let mut out = Vec::new();
        s.on_message_into(
            Time::at(90),
            nid(2),
            EsMsg::Reply {
                value: Some(7),
                ts: Timestamp::INITIAL,
                r_sn: 0,
            },
            &mut out,
        );
        assert!(out.contains(&SpaceEffect::JoinComplete), "{out:?}");
        assert!(s.is_active());
        assert_eq!(s.on_timer(Time::at(96), RETRANSMIT_TAG), vec![]);
    }

    fn spaced_es_joiner(keys: u32) -> RegisterSpace<EsRegister<u64>> {
        let ecfg = EsConfig::new(3).with_join_quorum(2);
        RegisterSpace::new_joiner(
            (0..keys)
                .map(|_| EsRegister::<u64>::new_joiner(nid(9), ecfg, oid(900)))
                .collect(),
        )
        .with_retransmit(Some(RetransmitConfig::after(Span::ticks(8))))
    }

    #[test]
    fn spaced_one_group_es_join_retransmits_like_solo() {
        let mut s = spaced_es_joiner(2);
        // Both keys' inquiries coalesce into one JoinAll; the silence
        // timer rides right behind it — the solo sequence, spaced.
        assert_eq!(
            s.on_enter(Time::ZERO),
            vec![
                SpaceEffect::Broadcast {
                    msg: SpaceMsg::JoinAll {
                        inner: EsMsg::Inquiry { r_sn: 0 },
                        full: false,
                    }
                },
                SpaceEffect::SetTimer {
                    delay: Span::ticks(8),
                    tag: RETRANSMIT_TAG,
                },
            ]
        );
        assert_eq!(
            s.on_timer(Time::at(8), RETRANSMIT_TAG),
            vec![
                SpaceEffect::Broadcast {
                    msg: SpaceMsg::JoinAll {
                        inner: EsMsg::Inquiry { r_sn: 0 },
                        full: false,
                    }
                },
                SpaceEffect::Retransmit,
                SpaceEffect::SetTimer {
                    delay: Span::ticks(16),
                    tag: RETRANSMIT_TAG,
                },
            ]
        );
        assert!(!s.is_active());
    }

    #[test]
    fn duplicate_batch_replies_never_complete_a_join_early() {
        let mut s = spaced_es_joiner(2);
        s.on_enter(Time::ZERO);
        let batch = || SpaceMsg::Batch {
            replies: (0..2)
                .map(|k| {
                    (
                        key(k),
                        EsMsg::Reply {
                            value: Some(7),
                            ts: Timestamp::INITIAL,
                            r_sn: 0,
                        },
                    )
                })
                .collect(),
        };
        // A retransmitted inquiry often elicits duplicate replies: the
        // same responder's batch delivered twice is still one vote toward
        // join quorum 2.
        for round in 0..2 {
            let mut out = Vec::new();
            s.on_message_into(Time::at(5), nid(1), batch(), &mut out);
            assert!(
                !out.contains(&SpaceEffect::JoinComplete),
                "duplicate delivery {round} completed the join: {out:?}"
            );
        }
        assert!(!s.is_active(), "a duplicate reply is not a second vote");
        // A second *distinct* responder reaches the quorum.
        let mut out = Vec::new();
        s.on_message_into(Time::at(6), nid(2), batch(), &mut out);
        assert!(out.contains(&SpaceEffect::JoinComplete), "{out:?}");
        assert!(s.is_active());
    }

    #[test]
    fn payload_count_reflects_batching() {
        assert_eq!(
            SpaceMsg::Keyed {
                key: key(0),
                inner: ()
            }
            .payload_count(),
            1
        );
        assert_eq!(
            SpaceMsg::JoinAll {
                inner: (),
                full: false
            }
            .payload_count(),
            1
        );
        assert_eq!(
            SpaceMsg::<()>::Batch {
                replies: vec![(key(0), ()), (key(1), ())]
            }
            .payload_count(),
            2
        );
    }
}
