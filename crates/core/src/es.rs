//! The eventually synchronous protocol — Figures 4, 5 and 6 of the paper.
//!
//! In an eventually synchronous system the delay bound `δ` exists but is
//! unknown and holds only after an unknown global stabilization time (GST),
//! so no `wait(δ)` can be trusted. The protocol replaces the synchronous
//! protocol's waits with **acknowledged quorums** under two assumptions
//! (§5.2):
//!
//! * **Majority of active processes**: `∀τ: |A(τ)| ≥ ⌊n/2⌋ + 1` — the
//!   dynamic-system analogue of the classical "majority of non-faulty
//!   processes";
//! * **churn bound** `c ≤ 1/(3δn)` — note it involves the system size `n`,
//!   unlike the synchronous bound `1/(3δ)`.
//!
//! Message flow:
//!
//! * **join** (Figure 4): broadcast `INQUIRY(i, 0)`, gather `⌊n/2⌋+1`
//!   `REPLY`s, adopt the freshest, become active, then answer everyone in
//!   `reply_to ∪ dl_prev`. `DL_PREV` is the mutual-help channel between
//!   concurrent joiners that Lemma 5's termination argument leans on: a
//!   not-yet-active process that receives your inquiry promises you a reply
//!   for when it activates.
//! * **read** (Figure 5): a simplified join — broadcast `READ(i, r_sn)`,
//!   await a majority of `REPLY`s tagged `r_sn`, adopt, return.
//! * **write** (Figure 6): *read first* to learn the highest sequence
//!   number, then broadcast `WRITE(v, sn+1)` and await a majority of
//!   `ACK`s. Acks also flow back through join replies (a joiner acks the
//!   value a replier handed it), which is how an in-flight write keeps
//!   making progress while the membership churns underneath it — Lemma 7.
//!
//! ## Resolved pseudo-code ambiguities
//!
//! The report's figure text has mangled subscripts; the disambiguations
//! below follow the prose and the proofs (documented in `DESIGN.md` §4):
//!
//! 1. the `ACK` sent when a `REPLY` is received (Fig. 4 line 20) carries
//!    the *register* timestamp from the reply, so it counts toward the
//!    originating writer's `write_ack` (required by Lemma 7);
//! 2. `DL_PREV` carries the *sender's* pending request number (its
//!    `read_sn`, 0 while joining), so the eventual reply passes the
//!    receiver's `r_sn = read_sn` filter (Fig. 4 line 19);
//! 3. the write's ack filter (Fig. 6 line 10) is timestamp equality with
//!    the in-flight write.
//!
//! ## Extensions
//!
//! * **Timestamps, not bare sequence numbers.** The paper assumes writes
//!   are never concurrent (§5.3) and leaves "any process writes at any
//!   time" to future work (§7). We order values by [`Timestamp`] `(sn,
//!   writer)`; with a single writer this degenerates to the paper's `sn`,
//!   and with concurrent writers values still serialize deterministically.
//! * **Atomic upgrade** ([`EsConfig::atomic`]): before returning, a read
//!   writes its value back to a majority (`WRITE_BACK`/`ACK`), the
//!   classical ABD phase-2; this eliminates new/old inversions, lifting the
//!   register from regular to atomic at one extra round-trip per read.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dynareg_sim::{NodeId, OpId, Time};

use crate::actor::{Effect, OpOutcome, RegisterProcess, Value};

/// A logical timestamp ordering written values: lexicographic on
/// `(sn, writer)`.
///
/// With the paper's single-writer assumption the `writer` component never
/// discriminates; it exists so the multi-writer extension serializes
/// concurrent writes instead of corrupting replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// Sequence number (−1 = ⊥, 0 = initial value).
    pub sn: i64,
    /// Id of the writing process (0 for the initial value).
    pub writer: u64,
}

impl Timestamp {
    /// The ⊥ timestamp of a process that never obtained a value.
    pub const BOTTOM: Timestamp = Timestamp { sn: -1, writer: 0 };

    /// The timestamp of the register's initial value.
    pub const INITIAL: Timestamp = Timestamp { sn: 0, writer: 0 };

    /// The timestamp a write by `writer` produces after observing `self`.
    pub fn next_for(self, writer: NodeId) -> Timestamp {
        Timestamp {
            sn: self.sn + 1,
            writer: writer.as_raw(),
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.sn, self.writer)
    }
}

/// Wire messages of the eventually synchronous protocol (Figures 4–6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EsMsg<V> {
    /// `INQUIRY(i, r_sn)` — Figure 4 line 03 (`r_sn = 0` identifies the
    /// join; the paper treats the join as "the read identified 0").
    Inquiry {
        /// The inquirer's pending request number (0 for joins).
        r_sn: u64,
    },
    /// `READ(i, r_sn)` — Figure 5 line 03.
    Read {
        /// The reader's request number for matching replies.
        r_sn: u64,
    },
    /// `REPLY(⟨i, register, ts⟩, r_sn)` — Figures 4/5.
    Reply {
        /// The replier's register copy (`None` = ⊥).
        value: Option<V>,
        /// Its timestamp.
        ts: Timestamp,
        /// Echo of the request number this answers.
        r_sn: u64,
    },
    /// `WRITE(⟨i, v, ts⟩)` — Figure 6 line 04.
    Write {
        /// The value being written.
        value: V,
        /// Its timestamp.
        ts: Timestamp,
    },
    /// Read write-back (atomic extension): semantically a `WRITE` of an
    /// already-written value; distinct label for accounting.
    WriteBack {
        /// The value being propagated.
        value: V,
        /// Its (existing) timestamp.
        ts: Timestamp,
    },
    /// `ACK(i, ts)` — Figure 6 lines 08–10 and Figure 4 line 20.
    Ack {
        /// The acknowledged timestamp.
        ts: Timestamp,
    },
    /// `DL_PREV(i, r_sn)` — Figure 4 lines 14, 16, 22.
    DlPrev {
        /// The *sender's* pending request number (see module docs).
        r_sn: u64,
    },
}

impl<V> EsMsg<V> {
    /// Message label for traces and statistics.
    pub fn label(&self) -> &'static str {
        match self {
            EsMsg::Inquiry { .. } => "INQUIRY",
            EsMsg::Read { .. } => "READ",
            EsMsg::Reply { .. } => "REPLY",
            EsMsg::Write { .. } => "WRITE",
            EsMsg::WriteBack { .. } => "WRITE_BACK",
            EsMsg::Ack { .. } => "ACK",
            EsMsg::DlPrev { .. } => "DL_PREV",
        }
    }
}

/// Configuration of the eventually synchronous protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EsConfig {
    /// Nominal system size `n` (known to every process, §3.1).
    pub n: usize,
    /// Whether reads perform the ABD write-back phase (atomic semantics).
    pub read_write_back: bool,
    /// Whether the protocol emits [`Effect::Note`] annotations ("quorum
    /// reached", …). Off by default: notes build `String`s on the delivery
    /// hot path, so runtimes enable them only when a trace is actually
    /// recorded (the scenario harness ties this to its `trace` flag).
    pub notes: bool,
    /// Reply quorum of the **join** phase only (`None` = the majority
    /// [`EsConfig::quorum`], the paper's protocol). Key-sharded register
    /// spaces answer a join inquiry only from the `≈ n/G` responders of
    /// one shard, so the sharded factory sizes the join quorum to the
    /// shard (`⌊(n/G)/2⌋ + 1`) — the quorum-per-shard liveness trade.
    /// Steady-state reads and write acks always use the full majority.
    pub join_quorum: Option<usize>,
}

impl EsConfig {
    /// The paper's protocol (regular semantics) for a system of size `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> EsConfig {
        assert!(n > 0, "system size must be positive");
        EsConfig {
            n,
            read_write_back: false,
            notes: false,
            join_quorum: None,
        }
    }

    /// The atomic extension: reads write back before returning.
    pub fn atomic(n: usize) -> EsConfig {
        EsConfig {
            read_write_back: true,
            ..EsConfig::new(n)
        }
    }

    /// Enables trace annotations ([`Effect::Note`]); see the `notes` field.
    pub fn with_notes(mut self) -> EsConfig {
        self.notes = true;
        self
    }

    /// Overrides the join-phase reply quorum (key-sharded joins; see the
    /// `join_quorum` field).
    ///
    /// # Panics
    /// Panics if `quorum` is zero.
    pub fn with_join_quorum(mut self, quorum: usize) -> EsConfig {
        assert!(quorum > 0, "a join quorum must be positive");
        self.join_quorum = Some(quorum);
        self
    }

    /// The reply quorum the join phase waits for: the shard-sized override
    /// if one is set, the full majority otherwise.
    pub fn effective_join_quorum(&self) -> usize {
        self.join_quorum.unwrap_or_else(|| self.quorum())
    }

    /// The quorum size `⌊n/2⌋ + 1` (majority).
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// The paper's churn threshold `1/(3δn)` for this system size (§5.2).
    pub fn churn_threshold(&self, delta: dynareg_sim::Span) -> f64 {
        1.0 / (3.0 * delta.as_ticks() as f64 * self.n as f64)
    }
}

/// Why a quorum-read phase is running.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadPurpose<V> {
    /// A client read: complete the op with the value.
    Client,
    /// Phase one of a client write (Figure 6 line 01): learn the highest
    /// timestamp, then disseminate `value`.
    WritePhase {
        /// The value the client is writing.
        value: V,
    },
}

/// An in-flight quorum read (client read or write phase 1).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReadCtx<V> {
    op: OpId,
    purpose: ReadPurpose<V>,
}

/// An in-flight write dissemination awaiting acks (Figure 6 line 05).
#[derive(Debug, Clone, PartialEq, Eq)]
struct AckWait {
    op: OpId,
    ts: Timestamp,
    acks: BTreeSet<NodeId>,
    /// Whether completing delivers `WriteOk` (client write) or the read
    /// value (atomic read write-back).
    is_write: bool,
}

/// One process running the eventually synchronous protocol of Figures 4–6.
///
/// # Example
///
/// ```
/// use dynareg_core::es::{EsConfig, EsRegister, EsMsg, Timestamp};
/// use dynareg_core::{RegisterProcess, Effect};
/// use dynareg_sim::{NodeId, OpId, Time};
///
/// // A joiner broadcasts INQUIRY(i, 0) on entry.
/// let cfg = EsConfig::new(5);
/// let mut p: EsRegister<u64> =
///     EsRegister::new_joiner(NodeId::from_raw(9), cfg, OpId::from_raw(0));
/// let effects = p.on_enter(Time::ZERO);
/// assert_eq!(effects, vec![Effect::Broadcast { msg: EsMsg::Inquiry { r_sn: 0 } }]);
/// ```
#[derive(Debug, Clone)]
pub struct EsRegister<V> {
    id: NodeId,
    config: EsConfig,
    /// `registerᵢ` (`None` = ⊥).
    register: Option<V>,
    /// The copy's timestamp (the paper's `snᵢ`, extended).
    ts: Timestamp,
    /// `activeᵢ`.
    active: bool,
    /// `readingᵢ`.
    reading: bool,
    /// `read_snᵢ` — 0 identifies the join; incremented per read request.
    read_sn: u64,
    /// `repliesᵢ` — keyed by sender so a quorum counts distinct processes.
    replies: BTreeMap<NodeId, (Option<V>, Timestamp)>,
    /// `reply_toᵢ` — (requester, its r_sn) pairs to answer upon activation.
    reply_to: Vec<(NodeId, u64)>,
    /// `dl_prevᵢ` — (promiser → requester, r_sn) pairs gathered from
    /// `DL_PREV` messages, answered upon activation.
    dl_prev: Vec<(NodeId, u64)>,
    /// The join op id (for the recorded history).
    pending_join: Option<OpId>,
    /// In-flight quorum read.
    pending_read: Option<ReadCtx<V>>,
    /// In-flight ack collection (write dissemination or read write-back).
    pending_ack: Option<AckWait>,
}

impl<V: Value> EsRegister<V> {
    /// A process of the initial population: active, holding `initial` at
    /// [`Timestamp::INITIAL`].
    pub fn new_bootstrap(id: NodeId, config: EsConfig, initial: V) -> EsRegister<V> {
        EsRegister {
            id,
            config,
            register: Some(initial),
            ts: Timestamp::INITIAL,
            active: true,
            reading: false,
            read_sn: 0,
            replies: BTreeMap::new(),
            reply_to: Vec::new(),
            dl_prev: Vec::new(),
            pending_join: None,
            pending_read: None,
            pending_ack: None,
        }
    }

    /// A process about to enter the system; `join_op` identifies its join
    /// in the recorded history.
    pub fn new_joiner(id: NodeId, config: EsConfig, join_op: OpId) -> EsRegister<V> {
        EsRegister {
            id,
            config,
            register: None,
            ts: Timestamp::BOTTOM,
            active: false,
            reading: false,
            read_sn: 0,
            replies: BTreeMap::new(),
            reply_to: Vec::new(),
            dl_prev: Vec::new(),
            pending_join: Some(join_op),
            pending_read: None,
            pending_ack: None,
        }
    }

    /// The join operation this process is executing, if any.
    pub fn pending_join(&self) -> Option<OpId> {
        self.pending_join
    }

    /// The local register copy (`None` = ⊥).
    pub fn local_value(&self) -> Option<&V> {
        self.register.as_ref()
    }

    /// The local timestamp.
    pub fn local_ts(&self) -> Timestamp {
        self.ts
    }

    /// Current reply to an inquiry/read: the local copy.
    fn reply_msg(&self, r_sn: u64) -> EsMsg<V> {
        EsMsg::Reply {
            value: self.register.clone(),
            ts: self.ts,
            r_sn,
        }
    }

    /// Figure 4/5 lines 05–06: adopt the freshest gathered reply.
    fn adopt_best_reply(&mut self) {
        if let Some((value, ts)) = self.replies.values().max_by_key(|(_, ts)| *ts).cloned() {
            if ts > self.ts {
                self.ts = ts;
                self.register = value;
            }
        }
    }

    /// Figure 4 lines 07–11: become active and answer `reply_to ∪ dl_prev`.
    fn finish_join(&mut self, out: &mut Vec<Effect<EsMsg<V>, V>>) {
        debug_assert!(!self.active);
        self.adopt_best_reply();
        self.active = true; // line 07
        if self.config.notes {
            out.push(Effect::Note(format!(
                "join quorum reached with {} replies, adopted ts {}",
                self.replies.len(),
                self.ts
            )));
        }
        // Lines 08–10: one REPLY per distinct (requester, r_sn).
        let mut targets: Vec<(NodeId, u64)> = self
            .reply_to
            .drain(..)
            .chain(self.dl_prev.drain(..))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for (j, r_sn) in targets {
            out.push(Effect::Send {
                to: j,
                msg: self.reply_msg(r_sn),
            });
        }
        out.push(Effect::JoinComplete); // line 11
    }

    /// Starts a quorum read (join-style collection with a fresh `r_sn`):
    /// Figure 5 lines 01–03.
    fn start_quorum_read(&mut self, op: OpId, purpose: ReadPurpose<V>) -> Vec<Effect<EsMsg<V>, V>> {
        self.read_sn += 1; // line 01
        self.replies.clear(); // line 02
        self.reading = true;
        self.pending_read = Some(ReadCtx { op, purpose });
        vec![Effect::Broadcast {
            msg: EsMsg::Read { r_sn: self.read_sn },
        }] // line 03
    }

    /// Figure 5 lines 05–07 (+ write phase 2 / write-back dispatch).
    fn finish_quorum_read(&mut self, out: &mut Vec<Effect<EsMsg<V>, V>>) {
        self.adopt_best_reply(); // lines 05–06
        self.reading = false; // line 07
        let ctx = self.pending_read.take().expect("read context");
        match ctx.purpose {
            ReadPurpose::Client => {
                if self.config.read_write_back {
                    // Atomic extension: propagate before returning.
                    match self.register.clone() {
                        Some(value) => {
                            self.pending_ack = Some(AckWait {
                                op: ctx.op,
                                ts: self.ts,
                                acks: BTreeSet::new(),
                                is_write: false,
                            });
                            out.push(Effect::Broadcast {
                                msg: EsMsg::WriteBack { value, ts: self.ts },
                            });
                        }
                        // ⊥ cannot be usefully written back; return it and
                        // let the checker flag the anomaly.
                        None => out.push(Effect::OpComplete {
                            op: ctx.op,
                            outcome: OpOutcome::Read(None),
                        }),
                    }
                } else {
                    out.push(Effect::OpComplete {
                        op: ctx.op,
                        outcome: OpOutcome::Read(self.register.clone()),
                    });
                }
            }
            ReadPurpose::WritePhase { value } => {
                // Figure 6 lines 02–04: stamp past the freshest timestamp
                // and disseminate.
                self.ts = self.ts.next_for(self.id);
                self.register = Some(value.clone());
                self.pending_ack = Some(AckWait {
                    op: ctx.op,
                    ts: self.ts,
                    acks: BTreeSet::new(),
                    is_write: true,
                });
                out.push(Effect::Broadcast {
                    msg: EsMsg::Write { value, ts: self.ts },
                });
            }
        }
    }

    /// Quorum test shared by join and read reply collection. A joining
    /// process waits for the (possibly shard-sized) join quorum; an active
    /// reader always waits for the full majority.
    fn reply_quorum_reached(&self) -> bool {
        let quorum = if self.active {
            self.config.quorum()
        } else {
            self.config.effective_join_quorum()
        };
        self.replies.len() >= quorum
    }

    /// Handles an `ACK(ts)`: Figure 6 lines 09–10 (plus write-back acks).
    fn on_ack(&mut self, from: NodeId, ts: Timestamp, out: &mut Vec<Effect<EsMsg<V>, V>>) {
        let Some(wait) = self.pending_ack.as_mut() else {
            return;
        };
        if wait.ts != ts {
            return; // ack for an older write
        }
        wait.acks.insert(from);
        if wait.acks.len() >= self.config.quorum() {
            let wait = self.pending_ack.take().expect("checked above");
            let outcome = if wait.is_write {
                OpOutcome::WriteOk // Figure 6 line 05: return ok
            } else {
                OpOutcome::Read(self.register.clone())
            };
            if self.config.notes {
                out.push(Effect::Note(format!("ack quorum for {ts}")));
            }
            out.push(Effect::OpComplete {
                op: wait.op,
                outcome,
            });
        }
    }
}

impl<V: Value> RegisterProcess for EsRegister<V> {
    type Msg = EsMsg<V>;
    type Val = V;

    fn id(&self) -> NodeId {
        self.id
    }

    fn is_active(&self) -> bool {
        self.active
    }

    fn join_replies(&self) -> Option<usize> {
        // `repliesᵢ` is keyed by sender, so duplicates from a retransmitted
        // inquiry overwrite rather than inflate the count. After activation
        // the same map serves quorum reads and must not be interpreted as
        // join progress.
        (!self.active).then_some(self.replies.len())
    }

    /// `operation join(i)` — Figure 4 lines 01–04.
    fn on_enter(&mut self, _now: Time) -> Vec<Effect<EsMsg<V>, V>> {
        if self.active {
            return vec![Effect::JoinComplete];
        }
        // Lines 01–02 happened at construction; read_snᵢ = 0 identifies the
        // join. Line 03: broadcast INQUIRY(i, 0). Line 04 (the wait) is
        // event-driven: completion fires in `on_message` when the quorum is
        // reached.
        vec![Effect::Broadcast {
            msg: EsMsg::Inquiry { r_sn: 0 },
        }]
    }

    fn on_timer(&mut self, _now: Time, tag: u64) -> Vec<Effect<EsMsg<V>, V>> {
        panic!("the eventually synchronous protocol sets no timers (got tag {tag})");
    }

    fn on_message(&mut self, now: Time, from: NodeId, msg: EsMsg<V>) -> Vec<Effect<EsMsg<V>, V>> {
        let mut out = Vec::new();
        self.on_message_into(now, from, msg, &mut out);
        out
    }

    // Message delivery is the simulator's hottest edge (every INQUIRY/READ
    // broadcast lands here once per process, and an ES-heavy sweep delivers
    // tens of millions of them); the buffered form makes the common cases —
    // replying to a request, recording a reply, acking a write — append
    // into the runtime's reused buffer with zero allocations.
    fn on_message_into(
        &mut self,
        _now: Time,
        from: NodeId,
        msg: EsMsg<V>,
        out: &mut Vec<Effect<EsMsg<V>, V>>,
    ) {
        match msg {
            // Figure 4 lines 12–17.
            EsMsg::Inquiry { r_sn } => {
                if self.active {
                    // Line 13.
                    out.push(Effect::Send {
                        to: from,
                        msg: self.reply_msg(r_sn),
                    });
                    // Line 14: a reader asks the joiner to report back the
                    // value it will obtain, tagged with *our* pending read.
                    if self.reading {
                        out.push(Effect::Send {
                            to: from,
                            msg: EsMsg::DlPrev { r_sn: self.read_sn },
                        });
                    }
                } else {
                    // Line 15.
                    if !self.reply_to.contains(&(from, r_sn)) {
                        self.reply_to.push((from, r_sn));
                    }
                    // Line 16: mutual help between concurrent joiners — our
                    // pending request is the join itself (read_sn = 0).
                    out.push(Effect::Send {
                        to: from,
                        msg: EsMsg::DlPrev { r_sn: self.read_sn },
                    });
                }
            }
            // Figure 5 lines 08–11.
            EsMsg::Read { r_sn } => {
                if self.active {
                    out.push(Effect::Send {
                        to: from,
                        msg: self.reply_msg(r_sn),
                    });
                } else if !self.reply_to.contains(&(from, r_sn)) {
                    self.reply_to.push((from, r_sn));
                }
            }
            // Figure 4 lines 18–21.
            EsMsg::Reply { value, ts, r_sn } => {
                if r_sn != self.read_sn {
                    return; // stale reply for a finished request
                }
                let collecting = !self.active || self.reading;
                if !collecting {
                    return;
                }
                self.replies.insert(from, (value, ts));
                // Line 20: acknowledge the carried value — this is what
                // lets an in-flight write count us (Lemma 7).
                out.push(Effect::Send {
                    to: from,
                    msg: EsMsg::Ack { ts },
                });
                if self.reply_quorum_reached() {
                    if !self.active {
                        self.finish_join(out);
                    } else if self.reading {
                        self.finish_quorum_read(out);
                    }
                }
            }
            // Figure 6 lines 06–08 (shared by the write-back extension).
            EsMsg::Write { value, ts } | EsMsg::WriteBack { value, ts } => {
                if ts > self.ts {
                    self.register = Some(value);
                    self.ts = ts;
                }
                // Line 08: always ack the received timestamp.
                out.push(Effect::Send {
                    to: from,
                    msg: EsMsg::Ack { ts },
                });
            }
            // Figure 6 lines 09–10 / write-back acks.
            EsMsg::Ack { ts } => self.on_ack(from, ts, out),
            // Figure 4 line 22.
            EsMsg::DlPrev { r_sn } => {
                if !self.active && !self.dl_prev.contains(&(from, r_sn)) {
                    self.dl_prev.push((from, r_sn));
                }
            }
        }
    }

    /// `operation read(i)` — Figure 5.
    fn on_read(&mut self, _now: Time, op: OpId) -> Vec<Effect<EsMsg<V>, V>> {
        assert!(self.active, "reads are invoked only after join returns");
        assert!(
            self.pending_read.is_none() && self.pending_ack.is_none(),
            "operations on one process are sequential"
        );
        self.start_quorum_read(op, ReadPurpose::Client)
    }

    /// `operation write(v)` — Figure 6.
    fn on_write(&mut self, _now: Time, op: OpId, value: V) -> Vec<Effect<EsMsg<V>, V>> {
        assert!(self.active, "writes are invoked only after join returns");
        assert!(
            self.pending_read.is_none() && self.pending_ack.is_none(),
            "operations on one process are sequential"
        );
        // Line 01: read() — to obtain the highest timestamp.
        self.start_quorum_read(op, ReadPurpose::WritePhase { value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::completions;

    fn nid(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn oid(i: u64) -> OpId {
        OpId::from_raw(i)
    }

    fn cfg() -> EsConfig {
        EsConfig::new(5) // quorum = 3
    }

    fn bootstrap(i: u64) -> EsRegister<u64> {
        EsRegister::new_bootstrap(nid(i), cfg(), 0)
    }

    fn joiner(i: u64) -> EsRegister<u64> {
        EsRegister::new_joiner(nid(i), cfg(), oid(900 + i))
    }

    fn reply(value: u64, sn: i64, r_sn: u64) -> EsMsg<u64> {
        EsMsg::Reply {
            value: Some(value),
            ts: Timestamp { sn, writer: 0 },
            r_sn,
        }
    }

    #[test]
    fn quorum_is_majority() {
        assert_eq!(EsConfig::new(5).quorum(), 3);
        assert_eq!(EsConfig::new(6).quorum(), 4);
        assert_eq!(EsConfig::new(1).quorum(), 1);
    }

    #[test]
    fn timestamps_order_lexicographically() {
        let a = Timestamp { sn: 1, writer: 5 };
        let b = Timestamp { sn: 2, writer: 1 };
        let c = Timestamp { sn: 2, writer: 3 };
        assert!(a < b && b < c);
        assert!(Timestamp::BOTTOM < Timestamp::INITIAL);
        assert_eq!(a.next_for(nid(9)), Timestamp { sn: 2, writer: 9 });
    }

    #[test]
    fn join_broadcasts_inquiry_zero() {
        let mut p = joiner(9);
        assert_eq!(
            p.on_enter(Time::ZERO),
            vec![Effect::Broadcast {
                msg: EsMsg::Inquiry { r_sn: 0 }
            }]
        );
        assert!(!p.is_active());
    }

    #[test]
    fn join_completes_on_quorum_and_adopts_freshest() {
        let mut p = joiner(9);
        p.on_enter(Time::ZERO);
        assert!(p
            .on_message(Time::at(1), nid(0), reply(10, 1, 0))
            .iter()
            .any(|e| matches!(
                e,
                Effect::Send {
                    msg: EsMsg::Ack { .. },
                    ..
                }
            )));
        p.on_message(Time::at(2), nid(1), reply(20, 2, 0));
        assert!(!p.is_active(), "two replies < quorum of three");
        let effects = p.on_message(Time::at(3), nid(2), reply(10, 1, 0));
        assert!(effects.contains(&Effect::JoinComplete));
        assert!(p.is_active());
        assert_eq!(p.local_value(), Some(&20));
        assert_eq!(p.local_ts().sn, 2);
    }

    #[test]
    fn duplicate_replies_do_not_fake_a_quorum() {
        let mut p = joiner(9);
        p.on_enter(Time::ZERO);
        for t in 1..=5 {
            p.on_message(Time::at(t), nid(0), reply(10, 1, 0));
        }
        assert!(!p.is_active(), "one replier, however chatty, is one vote");
    }

    #[test]
    fn join_answers_postponed_and_dlprev_requesters_on_activation() {
        let mut p = joiner(9);
        p.on_enter(Time::ZERO);
        // A fellow joiner inquires: postponed + we promise DL_PREV.
        let effects = p.on_message(Time::at(1), nid(50), EsMsg::Inquiry { r_sn: 0 });
        assert_eq!(
            effects,
            vec![Effect::Send {
                to: nid(50),
                msg: EsMsg::DlPrev { r_sn: 0 }
            }]
        );
        // A reader's DL_PREV promise lands on us.
        p.on_message(Time::at(2), nid(60), EsMsg::DlPrev { r_sn: 4 });
        // Reach quorum.
        p.on_message(Time::at(3), nid(0), reply(10, 1, 0));
        p.on_message(Time::at(4), nid(1), reply(10, 1, 0));
        let effects = p.on_message(Time::at(5), nid(2), reply(10, 1, 0));
        let sends: Vec<(NodeId, u64)> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send {
                    to,
                    msg: EsMsg::Reply { r_sn, .. },
                } => Some((*to, *r_sn)),
                _ => None,
            })
            .collect();
        assert!(sends.contains(&(nid(50), 0)), "postponed inquiry answered");
        assert!(
            sends.contains(&(nid(60), 4)),
            "DL_PREV promise honoured with the requester's r_sn"
        );
    }

    #[test]
    fn read_is_a_quorum_round() {
        let mut p = bootstrap(0);
        let effects = p.on_read(Time::ZERO, oid(1));
        assert_eq!(
            effects,
            vec![Effect::Broadcast {
                msg: EsMsg::Read { r_sn: 1 }
            }]
        );
        p.on_message(Time::at(1), nid(1), reply(0, 0, 1));
        p.on_message(Time::at(1), nid(2), reply(7, 3, 1));
        let done = p.on_message(Time::at(2), nid(3), reply(0, 0, 1));
        assert_eq!(completions(&done), vec![(oid(1), OpOutcome::Read(Some(7)))]);
        assert_eq!(p.local_ts().sn, 3, "read adopts the freshest copy");
    }

    #[test]
    fn stale_replies_are_ignored_across_requests() {
        let mut p = bootstrap(0);
        p.on_read(Time::ZERO, oid(1)); // r_sn = 1
        p.on_message(Time::at(1), nid(1), reply(0, 0, 1));
        p.on_message(Time::at(1), nid(2), reply(0, 0, 1));
        p.on_message(Time::at(1), nid(3), reply(0, 0, 1)); // completes
        p.on_read(Time::at(2), oid(2)); // r_sn = 2
                                        // Replies tagged with the old request change nothing.
        let effects = p.on_message(Time::at(3), nid(1), reply(0, 0, 1));
        assert!(effects.is_empty());
        assert!(p.reading);
    }

    #[test]
    fn active_process_replies_to_read_and_inquiry() {
        let mut p = bootstrap(0);
        let e1 = p.on_message(Time::at(1), nid(9), EsMsg::Read { r_sn: 3 });
        assert_eq!(
            e1,
            vec![Effect::Send {
                to: nid(9),
                msg: EsMsg::Reply {
                    value: Some(0),
                    ts: Timestamp::INITIAL,
                    r_sn: 3
                }
            }]
        );
        let e2 = p.on_message(Time::at(1), nid(9), EsMsg::Inquiry { r_sn: 0 });
        assert_eq!(e2.len(), 1, "not reading → no DL_PREV");
    }

    #[test]
    fn reading_process_adds_dlprev_to_inquiry_reply() {
        let mut p = bootstrap(0);
        p.on_read(Time::ZERO, oid(1));
        let effects = p.on_message(Time::at(1), nid(9), EsMsg::Inquiry { r_sn: 0 });
        assert_eq!(effects.len(), 2);
        assert!(matches!(
            effects[1],
            Effect::Send {
                to,
                msg: EsMsg::DlPrev { r_sn: 1 }
            } if to == nid(9)
        ));
    }

    #[test]
    fn write_reads_first_then_disseminates_and_acks_to_quorum() {
        let mut p = bootstrap(0);
        // Phase 1: the internal read (Figure 6 line 01).
        let effects = p.on_write(Time::ZERO, oid(1), 42);
        assert_eq!(
            effects,
            vec![Effect::Broadcast {
                msg: EsMsg::Read { r_sn: 1 }
            }]
        );
        p.on_message(Time::at(1), nid(1), reply(9, 4, 1));
        p.on_message(Time::at(1), nid(2), reply(0, 0, 1));
        let phase2 = p.on_message(Time::at(2), nid(3), reply(0, 0, 1));
        // Phase 2: WRITE with sn = max_seen + 1, stamped with our id.
        let expected_ts = Timestamp { sn: 5, writer: 0 };
        assert!(phase2.contains(&Effect::Broadcast {
            msg: EsMsg::Write {
                value: 42,
                ts: expected_ts
            }
        }));
        assert_eq!(p.local_value(), Some(&42));
        // Acks: two are not enough…
        p.on_message(Time::at(3), nid(1), EsMsg::Ack { ts: expected_ts });
        assert!(
            completions(&p.on_message(Time::at(3), nid(2), EsMsg::Ack { ts: expected_ts }))
                .is_empty()
        );
        // …the third completes the write.
        let done = p.on_message(Time::at(4), nid(3), EsMsg::Ack { ts: expected_ts });
        assert_eq!(completions(&done), vec![(oid(1), OpOutcome::WriteOk)]);
    }

    #[test]
    fn acks_for_old_timestamps_are_ignored() {
        let mut p = bootstrap(0);
        p.on_write(Time::ZERO, oid(1), 42);
        for i in 1..=3 {
            p.on_message(Time::at(1), nid(i), reply(0, 0, 1));
        }
        let old = Timestamp { sn: 0, writer: 0 };
        for i in 1..=3 {
            assert!(
                completions(&p.on_message(Time::at(2), nid(i), EsMsg::Ack { ts: old })).is_empty()
            );
        }
    }

    #[test]
    fn write_delivery_updates_and_always_acks() {
        let mut p = joiner(9); // even non-active processes handle WRITE
        p.on_enter(Time::ZERO);
        let ts = Timestamp { sn: 3, writer: 0 };
        let effects = p.on_message(Time::at(1), nid(0), EsMsg::Write { value: 7, ts });
        assert_eq!(
            effects,
            vec![Effect::Send {
                to: nid(0),
                msg: EsMsg::Ack { ts }
            }]
        );
        assert_eq!(p.local_value(), Some(&7));
        // An older write still acks but does not regress the copy.
        let old = Timestamp { sn: 1, writer: 0 };
        let effects = p.on_message(Time::at(2), nid(0), EsMsg::Write { value: 5, ts: old });
        assert_eq!(
            effects,
            vec![Effect::Send {
                to: nid(0),
                msg: EsMsg::Ack { ts: old }
            }]
        );
        assert_eq!(p.local_value(), Some(&7));
    }

    #[test]
    fn joiner_ack_counts_toward_inflight_write() {
        // Lemma 7's chain: writer replies to a joiner's inquiry with the
        // in-flight value; the joiner's reply-ack carries that timestamp and
        // fills write_ack.
        let mut writer = bootstrap(0);
        writer.on_write(Time::ZERO, oid(1), 42);
        for i in 1..=3 {
            writer.on_message(Time::at(1), nid(i), reply(0, 0, 1));
        }
        let ts = Timestamp { sn: 1, writer: 0 };
        // The writer answers a joiner's INQUIRY (it is active).
        let effects = writer.on_message(Time::at(2), nid(9), EsMsg::Inquiry { r_sn: 0 });
        assert!(matches!(
            &effects[0],
            Effect::Send { msg: EsMsg::Reply { ts: t, .. }, .. } if *t == ts
        ));
        // The joiner acks the replied timestamp (line 20) — simulate it.
        writer.on_message(Time::at(3), nid(9), EsMsg::Ack { ts });
        writer.on_message(Time::at(3), nid(1), EsMsg::Ack { ts });
        let done = writer.on_message(Time::at(3), nid(2), EsMsg::Ack { ts });
        assert_eq!(completions(&done), vec![(oid(1), OpOutcome::WriteOk)]);
    }

    #[test]
    fn atomic_mode_write_back_delays_read_completion() {
        let mut p = EsRegister::new_bootstrap(nid(0), EsConfig::atomic(5), 0u64);
        p.on_read(Time::ZERO, oid(1));
        p.on_message(Time::at(1), nid(1), reply(9, 2, 1));
        p.on_message(Time::at(1), nid(2), reply(0, 0, 1));
        let effects = p.on_message(Time::at(1), nid(3), reply(0, 0, 1));
        // Quorum reached, but instead of completing we broadcast WRITE_BACK.
        assert!(completions(&effects).is_empty());
        let ts = Timestamp { sn: 2, writer: 0 };
        assert!(effects.contains(&Effect::Broadcast {
            msg: EsMsg::WriteBack { value: 9, ts }
        }));
        // Read returns only after a majority acks the write-back.
        p.on_message(Time::at(2), nid(1), EsMsg::Ack { ts });
        p.on_message(Time::at(2), nid(2), EsMsg::Ack { ts });
        let done = p.on_message(Time::at(2), nid(3), EsMsg::Ack { ts });
        assert_eq!(completions(&done), vec![(oid(1), OpOutcome::Read(Some(9)))]);
    }

    #[test]
    fn concurrent_writers_serialize_by_writer_id() {
        // Multi-writer extension: both observe sn=0 and produce ⟨1,id⟩;
        // the higher id wins everywhere, deterministically.
        let ts_a = Timestamp { sn: 1, writer: 3 };
        let ts_b = Timestamp { sn: 1, writer: 7 };
        let mut p = bootstrap(0);
        p.on_message(
            Time::at(1),
            nid(3),
            EsMsg::Write {
                value: 100,
                ts: ts_a,
            },
        );
        p.on_message(
            Time::at(2),
            nid(7),
            EsMsg::Write {
                value: 200,
                ts: ts_b,
            },
        );
        assert_eq!(p.local_value(), Some(&200));
        // Reverse arrival order on another replica converges identically.
        let mut q = bootstrap(1);
        q.on_message(
            Time::at(1),
            nid(7),
            EsMsg::Write {
                value: 200,
                ts: ts_b,
            },
        );
        q.on_message(
            Time::at(2),
            nid(3),
            EsMsg::Write {
                value: 100,
                ts: ts_a,
            },
        );
        assert_eq!(q.local_value(), Some(&200));
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn overlapping_client_ops_panic() {
        let mut p = bootstrap(0);
        p.on_read(Time::ZERO, oid(1));
        p.on_read(Time::at(1), oid(2));
    }

    #[test]
    #[should_panic(expected = "sets no timers")]
    fn es_protocol_rejects_timers() {
        let mut p = bootstrap(0);
        p.on_timer(Time::ZERO, 1);
    }

    #[test]
    fn labels_cover_all_variants() {
        let ts = Timestamp::INITIAL;
        assert_eq!(EsMsg::<u64>::Inquiry { r_sn: 0 }.label(), "INQUIRY");
        assert_eq!(EsMsg::<u64>::Read { r_sn: 1 }.label(), "READ");
        assert_eq!(
            EsMsg::Reply {
                value: Some(1u64),
                ts,
                r_sn: 0
            }
            .label(),
            "REPLY"
        );
        assert_eq!(EsMsg::Write { value: 1u64, ts }.label(), "WRITE");
        assert_eq!(EsMsg::WriteBack { value: 1u64, ts }.label(), "WRITE_BACK");
        assert_eq!(EsMsg::<u64>::Ack { ts }.label(), "ACK");
        assert_eq!(EsMsg::<u64>::DlPrev { r_sn: 0 }.label(), "DL_PREV");
    }

    #[test]
    fn on_message_into_appends_and_converges_with_on_message() {
        // `on_message` delegates to `on_message_into`, so the exact
        // effect sequences are pinned by the per-message unit tests
        // above (which go through `on_message`). What this test guards
        // is the buffered entry point's *contract with the runtime*:
        // it must **append** to the reused buffer — never clobber it —
        // and driving a process through either entry point must leave
        // identical protocol state.
        let deliveries: Vec<(u64, EsMsg<u64>)> = vec![
            (1, reply(10, 1, 0)),
            (2, reply(20, 2, 0)),
            (3, reply(20, 2, 0)), // completes the join
            (
                1,
                EsMsg::Write {
                    value: 7,
                    ts: Timestamp { sn: 9, writer: 1 },
                },
            ),
            (4, EsMsg::Inquiry { r_sn: 0 }),
            (5, EsMsg::DlPrev { r_sn: 2 }),
        ];
        let mut via_vec = joiner(9);
        via_vec.on_enter(Time::ZERO);
        let mut via_buf = joiner(9);
        via_buf.on_enter(Time::ZERO);
        let mut buf = Vec::new();
        for (t, (from, msg)) in deliveries.into_iter().enumerate() {
            let expected = via_vec.on_message(Time::at(t as u64), nid(from), msg.clone());
            buf.push(Effect::Note("sentinel".into()));
            via_buf.on_message_into(Time::at(t as u64), nid(from), msg, &mut buf);
            assert_eq!(
                buf[0],
                Effect::Note("sentinel".into()),
                "append, not overwrite"
            );
            assert_eq!(&buf[1..], &expected[..]);
            buf.clear();
        }
        assert_eq!(via_vec.is_active(), via_buf.is_active());
        assert_eq!(via_vec.local_value(), via_buf.local_value());
        assert_eq!(via_vec.local_ts(), via_buf.local_ts());
    }

    #[test]
    fn join_quorum_override_applies_to_joins_only() {
        let cfg = EsConfig::new(9).with_join_quorum(2); // majority would be 5
        assert_eq!(cfg.effective_join_quorum(), 2);
        assert_eq!(cfg.quorum(), 5);
        let mut p: EsRegister<u64> = EsRegister::new_joiner(nid(9), cfg, oid(1));
        p.on_enter(Time::ZERO);
        p.on_message(Time::at(1), nid(0), reply(10, 1, 0));
        assert!(!p.is_active(), "one reply < join quorum of two");
        let effects = p.on_message(Time::at(2), nid(1), reply(20, 2, 0));
        assert!(
            effects.contains(&Effect::JoinComplete),
            "shard-sized quorum joins"
        );
        assert_eq!(p.local_value(), Some(&20));
        // A subsequent read still needs the full majority of five.
        p.on_read(Time::at(3), oid(2));
        for i in 0..4 {
            p.on_message(Time::at(4), nid(i), reply(20, 2, 1));
        }
        assert!(p.reading, "four replies < read quorum of five");
        let done = p.on_message(Time::at(5), nid(4), reply(20, 2, 1));
        assert_eq!(
            completions(&done),
            vec![(oid(2), OpOutcome::Read(Some(20)))]
        );
    }

    #[test]
    fn churn_threshold_involves_n() {
        let c = cfg().churn_threshold(dynareg_sim::Span::ticks(4));
        assert!((c - 1.0 / 60.0).abs() < 1e-12);
    }
}
