//! E5 — Theorem 1's boundary: what failing beyond `c = 1/(3δ)` looks like.
//!
//! Sweeping churn across the threshold under the worst-case adversary
//! shows the failure mode: the join pipeline (length 3δ) permanently holds
//! `3δ·c·n` processes, so the active population tracks `n(1 − 3δc)` and
//! hits zero at the threshold — the register fails by *disappearing*
//! (no active process to read or reply), not by lying. Stale reads
//! additionally require the Figure 3 race (E3).

use dynareg_bench::{expectation, header};
use dynareg_churn::LeaveSelector;
use dynareg_sim::Span;
use dynareg_testkit::experiment::run_seeds;
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_sync_churn_threshold");
    header(
        "E5",
        "Theorem 1 boundary (churn sweep across 1/(3δ))",
        "correct below the threshold; availability collapses at and beyond it",
    );

    let n = 30;
    let delta = Span::ticks(4);
    let mut table = Table::new([
        "c / c*",
        "predicted actives n(1-3δc)",
        "mean |A|",
        "min |A|",
        "joins done",
        "reads done",
        "unsafe runs",
        "stuck runs",
    ]);
    for fraction in [0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 4.0] {
        let reports = run_seeds(0..6, |seed| {
            Scenario::synchronous(n, delta)
                .worst_case_delays()
                .migrating_writer()
                .churn_fraction_of_bound(fraction)
                .leave_selector(LeaveSelector::ActiveFirst)
                .duration(Span::ticks(400))
                .reads_per_tick(2.0)
                .seed(seed)
                .run()
        });
        let mean_active = reports
            .iter()
            .filter_map(|r| r.metrics.histogram("gauge.active").and_then(|h| h.mean()))
            .sum::<f64>()
            / reports.len() as f64;
        let min_active = reports
            .iter()
            .filter_map(|r| r.metrics.histogram("gauge.active").and_then(|h| h.min()))
            .min()
            .unwrap_or(0);
        let joins: u64 = reports
            .iter()
            .map(|r| r.metrics.counter("ops.join_completed"))
            .sum();
        let reads: usize = reports.iter().map(|r| r.reads_checked()).sum();
        let unsafe_runs = reports.iter().filter(|r| !r.safety.is_ok()).count();
        let stuck_runs = reports.iter().filter(|r| !r.liveness.is_ok()).count();
        let predicted = (n as f64 * (1.0 - fraction)).max(0.0); // n(1-3δc) with c=f·c*
        table.row([
            fnum(fraction),
            fnum(predicted),
            fnum(mean_active),
            min_active.to_string(),
            joins.to_string(),
            reads.to_string(),
            format!("{unsafe_runs}/6"),
            format!("{stuck_runs}/6"),
        ]);
    }
    println!("{table}");
    expectation(
        "mean |A| tracks n(1−3δc) and collapses at c/c* = 1; completed joins \
         and read throughput collapse with it. Below the threshold every run \
         is safe and live (Theorem 1); beyond it the register is unavailable \
         rather than unsound — the crossover sits exactly at the paper's \
         threshold.",
    );
}
