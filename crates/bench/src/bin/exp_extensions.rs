//! E10 — §7 future-work directions, implemented and measured.
//!
//! (a) **Atomic upgrade**: the ABD-style read write-back removes all
//!     new/old inversions at the cost of one extra quorum round per read.
//! (b) **Multi-writer timestamps**: `(sn, writer)` pairs let *concurrent*
//!     writers — excluded by assumption in §5.3 — serialize
//!     deterministically; replicas converge regardless of delivery order.

use dynareg_bench::{expectation, header};
use dynareg_core::es::{EsConfig, EsMsg, EsRegister, Timestamp};
use dynareg_core::RegisterProcess;
use dynareg_sim::{NodeId, Span, Time};
use dynareg_testkit::experiment::{run_seeds, Aggregate};
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_extensions");
    header(
        "E10",
        "§7 extensions (atomic upgrade; multi-writer timestamps)",
        "write-back kills inversions at +1 RTT per read; timestamps serialize concurrent writers",
    );

    println!("(a) atomic upgrade — same load, regular vs atomic ES:\n");
    let mut table = Table::new([
        "variant",
        "inversions",
        "read lat (mean)",
        "msgs/run",
        "verdict",
    ]);
    for variant in ["sync (regular)", "es (regular)", "es + write-back"] {
        let reports = run_seeds(0..8, |seed| {
            let s = match variant {
                "sync (regular)" => Scenario::synchronous(10, Span::ticks(6)),
                "es (regular)" => Scenario::eventually_synchronous(10, Span::ticks(6), Time::ZERO),
                _ => Scenario::es_atomic(10, Span::ticks(6), Time::ZERO),
            };
            s.duration(Span::ticks(400))
                .reads_per_tick(5.0)
                .write_every(Span::ticks(12))
                .seed(seed)
                .run()
        });
        let agg = Aggregate::from_reports(&reports);
        let inversions: usize = reports.iter().map(|r| r.inversions()).sum();
        let atomic_ok = reports.iter().all(|r| r.atomicity.is_ok());
        table.row([
            variant.to_string(),
            inversions.to_string(),
            fnum(agg.mean_read_latency),
            fnum(agg.mean_messages),
            if variant == "es + write-back" {
                if atomic_ok {
                    "atomic-OK"
                } else {
                    "ATOMIC VIOLATED"
                }
                .to_string()
            } else {
                "regular-OK (inversions allowed)".to_string()
            },
        ]);
    }
    println!("{table}");

    println!("\n(b) multi-writer convergence — two writers, all interleavings of");
    println!("    their WRITE deliveries on a third replica:\n");
    let mut t2 = Table::new(["delivery order", "replica value", "replica ts"]);
    let ts_a = Timestamp { sn: 1, writer: 3 };
    let ts_b = Timestamp { sn: 1, writer: 7 };
    for order in ["A then B", "B then A"] {
        let mut replica = EsRegister::new_bootstrap(NodeId::from_raw(0), EsConfig::new(5), 0u64);
        let msgs: [(NodeId, EsMsg<u64>); 2] = [
            (
                NodeId::from_raw(3),
                EsMsg::Write {
                    value: 333,
                    ts: ts_a,
                },
            ),
            (
                NodeId::from_raw(7),
                EsMsg::Write {
                    value: 777,
                    ts: ts_b,
                },
            ),
        ];
        let seq: Vec<usize> = if order == "A then B" {
            vec![0, 1]
        } else {
            vec![1, 0]
        };
        for (t, &i) in seq.iter().enumerate() {
            let (from, msg) = msgs[i].clone();
            replica.on_message(Time::at(t as u64 + 1), from, msg);
        }
        t2.row([
            order.to_string(),
            format!("{:?}", replica.local_value()),
            replica.local_ts().to_string(),
        ]);
    }
    println!("{t2}");
    expectation(
        "(a) the synchronous protocol's local reads invert freely (legal for \
         a regular register); plain ES inverts rarely — its quorum reads \
         already adopt-and-return a majority-fresh value — and the write-back \
         variant is *provably* inversion-free at roughly double the read \
         latency. (b) both delivery orders leave the replica at value 777, \
         ts ⟨1,7⟩ — concurrent writes serialize by (sn, writer) instead of \
         clobbering.",
    );
}
