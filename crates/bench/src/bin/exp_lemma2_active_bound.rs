//! E4 — Lemma 2: `min_τ |A(τ, τ+3δ)| ≥ n(1 − 3δc)`.
//!
//! We measure the left-hand side under the worst-case configuration
//! (exact-δ delays, ActiveFirst victim selection, migrating writer) and
//! print it against both the paper's floor and the pipeline-corrected
//! steady-state floor `n(1 − 6δc)` — the reproduction's main analytical
//! finding (see `EXPERIMENTS.md` E4).

use dynareg_bench::{expectation, header};
use dynareg_churn::{analysis, LeaveSelector};
use dynareg_sim::{Span, Time};
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_lemma2_active_bound");
    header(
        "E4",
        "Lemma 2 (active-set floor over 3δ windows)",
        "|A(τ, τ+3δ)| ≥ n(1−3δc) > 0 whenever c ≤ 1/(3δ)",
    );

    let n = 30;
    let mut table = Table::new([
        "δ",
        "c / (1/3δ)",
        "paper floor n(1-3δc)",
        "steady floor n(1-6δc)",
        "measured min (adversarial)",
        "measured min (random)",
        "|A(0,3δ)| vs paper floor",
    ]);
    for &delta_ticks in &[2u64, 4, 8] {
        let delta = Span::ticks(delta_ticks);
        for fraction in [0.25, 0.5, 0.75, 1.0] {
            let run = |selector: LeaveSelector| {
                Scenario::synchronous(n, delta)
                    .worst_case_delays()
                    .migrating_writer()
                    .churn_fraction_of_bound(fraction)
                    .leave_selector(selector)
                    .duration(Span::ticks(60 * delta_ticks))
                    .seed(1)
                    .run()
            };
            let adversarial = run(LeaveSelector::ActiveFirst);
            let random = run(LeaveSelector::Random);
            let window = delta.times(3);
            let steady = |r: &dynareg_testkit::RunReport| {
                analysis::window_active_minimum(
                    &r.presence,
                    Time::at(10 * delta_ticks),
                    Time::at(50 * delta_ticks),
                    window,
                )
                .unwrap()
            };
            let c = adversarial.churn_rate;
            let origin = adversarial
                .presence
                .active_count_throughout(Time::ZERO, Time::ZERO + window);
            table.row([
                delta_ticks.to_string(),
                fnum(fraction),
                fnum(analysis::lemma2_bound(n, delta, c)),
                fnum(analysis::lemma2_steady_bound(n, delta, c)),
                steady(&adversarial).to_string(),
                steady(&random).to_string(),
                format!("{} ≥ {}", origin, fnum(analysis::lemma2_bound(n, delta, c))),
            ]);
        }
    }
    println!("{table}");
    expectation(
        "measured minima always dominate the steady floor n(1−6δc) and hug it \
         under the adversarial selector; the paper's floor n(1−3δc) holds for \
         the window at τ=0 (where its |A(τ)|=n premise is exact) but is \
         optimistic for steady-state windows, because 3δ·c·n processes are \
         permanently inside the join pipeline. Random victim selection sits \
         comfortably above both floors.",
    );
}
