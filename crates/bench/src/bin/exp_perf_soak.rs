//! PERF — engine soak: sustained large-population throughput measurement.
//!
//! Unlike the `exp_*` figure reproductions, this binary exists to measure
//! the *engine* (event queue, broadcast fan-out, node storage, checkers)
//! rather than the protocol. It runs two synchronous scenarios:
//!
//! * **scale** — a large population (default n=5000) over many ticks
//!   (default 10_000) with sustained absolute churn and a read-heavy
//!   workload; this is the configuration the seed engine's `BinaryHeap` /
//!   `BTreeMap` / O(R·W) paths choked on.
//! * **edge** — a smaller population (n=200) with churn at 0.9 of the
//!   Theorem 1 threshold `1/(3δ)`, so the join pipeline (the O(n)-messages
//!   hot path) carries production-shaped load.
//!
//! It prints wall-clock throughput (events/sec processed by the simulator,
//! reads/sec judged by the safety checkers) and writes the same numbers as
//! machine-readable JSON — the perf trajectory every future PR measures
//! against.
//!
//! Usage: `exp_perf_soak [--nodes N] [--ticks T] [--out PATH]`
//! (defaults: 5000 nodes, 10000 ticks, `BENCH_baseline.json`).

use std::time::Instant;

use dynareg_bench::{header, Cli};
use dynareg_churn::{ChurnDriver, ConstantRate, LeaveSelector};
use dynareg_core::sync::SyncConfig;
use dynareg_net::delay::Synchronous;
use dynareg_sim::obs::TickProfile;
use dynareg_sim::{IdSource, NodeId, Span, Time};
use dynareg_testkit::{ObsConfig, RateWorkload, SyncFactory, World, WorldConfig, WriterPolicy};
use dynareg_verify::{AtomicityChecker, LivenessChecker};

/// One measured scenario: what ran and how fast.
struct SoakResult {
    name: &'static str,
    nodes: usize,
    ticks: u64,
    churn_rate: f64,
    events: u64,
    messages: u64,
    sim_secs: f64,
    reads_checked: usize,
    check_secs: f64,
    safety_ok: bool,
    liveness_ok: bool,
    /// Wall-clock split of `sim_secs` across tick phases (delivery,
    /// timers, churn, workload, sampling) from the observability layer's
    /// tick profiler.
    tick_phases: TickProfile,
}

impl SoakResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.sim_secs.max(1e-9)
    }

    fn reads_per_sec(&self) -> f64 {
        self.reads_checked as f64 / self.check_secs.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"nodes\": {},\n",
                "      \"ticks\": {},\n",
                "      \"churn_rate\": {:.8},\n",
                "      \"events\": {},\n",
                "      \"messages\": {},\n",
                "      \"sim_secs\": {:.4},\n",
                "      \"events_per_sec\": {:.0},\n",
                "      \"reads_checked\": {},\n",
                "      \"check_secs\": {:.4},\n",
                "      \"reads_checked_per_sec\": {:.0},\n",
                "      \"safety_ok\": {},\n",
                "      \"liveness_ok\": {},\n",
                "      \"tick_phases\": {}\n",
                "    }}"
            ),
            self.name,
            self.nodes,
            self.ticks,
            self.churn_rate,
            self.events,
            self.messages,
            self.sim_secs,
            self.events_per_sec(),
            self.reads_checked,
            self.check_secs,
            self.reads_per_sec(),
            self.safety_ok,
            self.liveness_ok,
            self.tick_phases.json(),
        )
    }
}

/// Runs one synchronous soak scenario and measures it.
#[allow(clippy::disallowed_methods)] // bench harness throughput timing, outside the simulation
fn soak(
    name: &'static str,
    n: usize,
    ticks: u64,
    delta: Span,
    churn_rate: f64,
    reads_per_tick: f64,
) -> SoakResult {
    let end = Time::at(ticks);
    // Drain: stop churn + workload 12δ before the end so ops can finish.
    let stop = Time::at(ticks.saturating_sub(delta.as_ticks() * 12).max(1));
    let mut world = World::new(
        SyncFactory::new(SyncConfig::new(delta)),
        WorldConfig {
            n,
            initial: 0,
            delay: Box::new(Synchronous::new(delta)),
            churn: ChurnDriver::new(
                Box::new(StopAfter {
                    inner: ConstantRate::new(churn_rate),
                    stop_at: stop,
                }),
                LeaveSelector::Random,
                IdSource::starting_at(n as u64),
            ),
            workload: Box::new(RateWorkload::new(delta.times(3), reads_per_tick).stopping_at(stop)),
            seed: 0x000B_A1D0, // Baldoni et al.
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    world.protect(NodeId::from_raw(0));
    // Profiling only: no spans, no timeseries — the per-event `Instant`
    // reads are the whole overhead, and the event stream is untouched.
    world.set_obs(ObsConfig {
        tick_profile: true,
        ..ObsConfig::off()
    });

    let sim_start = Instant::now(); // detlint: allow(wall-clock) -- bench harness throughput timing, outside the simulation
    world.run_until(end);
    let sim_secs = sim_start.elapsed().as_secs_f64();
    let events = world.events_processed();
    let tick_phases = world
        .take_obs_report()
        .and_then(|r| r.tick_profile)
        .unwrap_or_default();

    let (history, _presence, _metrics, _trace, network) = world.into_outputs();
    let messages = network.total_sent();

    // One atomicity check covers both semantics: it runs the regularity
    // sweep internally and tallies inversions separately, so the regular
    // verdict is "no violations beyond the inversions". Running
    // RegularityChecker as well would double-scan (and double-count)
    // every read.
    let check_start = Instant::now(); // detlint: allow(wall-clock) -- bench harness throughput timing, outside the simulation
    let atomicity = AtomicityChecker::check(&history);
    let check_secs = check_start.elapsed().as_secs_f64();
    let safety_ok = atomicity.violation_count() == atomicity.inversions;
    let liveness = LivenessChecker::check(&history);

    SoakResult {
        name,
        nodes: n,
        ticks,
        churn_rate,
        events,
        messages,
        sim_secs,
        reads_checked: atomicity.checked_reads,
        check_secs,
        safety_ok,
        liveness_ok: liveness.is_ok(),
        tick_phases,
    }
}

/// Churn model wrapper going quiet at `stop_at` (mirrors the scenario
/// builder's drain behaviour without pulling in `Scenario`).
#[derive(Debug)]
struct StopAfter {
    inner: ConstantRate,
    stop_at: Time,
}

impl dynareg_churn::ChurnModel for StopAfter {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut dynareg_sim::DetRng) -> usize {
        if now >= self.stop_at {
            0
        } else {
            self.inner.refreshes(now, n, rng)
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        self.inner.nominal_rate()
    }
}

fn parse_args() -> (usize, u64, String) {
    let mut nodes = 5000usize;
    let mut ticks = 10_000u64;
    let mut out = "BENCH_baseline.json".to_string();
    let mut cli = Cli::from_env("exp_perf_soak [--nodes N] [--ticks T] [--out PATH]");
    while let Some(flag) = cli.next_arg() {
        match flag.as_str() {
            "--nodes" => {
                nodes = cli.parsed_where("--nodes", "a positive integer", |&n: &usize| n > 0);
            }
            "--ticks" => {
                ticks = cli.parsed_where("--ticks", "a positive integer", |&t: &u64| t > 0);
            }
            "--out" => out = cli.value("--out"),
            other => cli.fail(&format!("unknown argument `{other}`")),
        }
    }
    (nodes, ticks, out)
}

fn main() {
    let (nodes, ticks, out) = parse_args();
    header(
        "PERF",
        "engine soak (tick-wheel queue, fan-out, slab world, sweep checkers)",
        "sustained large-n throughput; regenerates the BENCH_*.json trajectory",
    );

    let delta = Span::ticks(4);
    // Scale scenario: churn fixed in *absolute* terms (≈0.5 joins/tick) so
    // the per-join O(n) message cost — not the churn model — sets the load.
    let scale_churn = 0.5 / nodes as f64;
    let scale = soak("scale", nodes, ticks, delta, scale_churn, 10.0);
    report(&scale);

    // Edge scenario: churn at 0.9 of Theorem 1's threshold c* = 1/(3δ).
    let edge_n = nodes.min(200);
    let edge_ticks = ticks.min(2_000);
    let edge_churn = 0.9 / (3.0 * delta.as_ticks() as f64);
    let edge = soak("edge", edge_n, edge_ticks, delta, edge_churn, 2.0);
    report(&edge);

    let json = format!(
        "{{\n  \"schema\": \"dynareg-bench-soak/2\",\n  \"scenarios\": [\n{},\n{}\n  ]\n}}\n",
        scale.json(),
        edge.json()
    );
    std::fs::write(&out, &json).expect("write benchmark json");
    println!("\nwrote {out}");
}

fn report(r: &SoakResult) {
    println!(
        "{:>5}: n={} ticks={} c={:.6} | {} events in {:.2}s = {:.0} events/sec | \
         {} msgs | {} reads checked in {:.3}s = {:.0} reads/sec | safety={} liveness={}",
        r.name,
        r.nodes,
        r.ticks,
        r.churn_rate,
        r.events,
        r.sim_secs,
        r.events_per_sec(),
        r.messages,
        r.reads_checked,
        r.check_secs,
        r.reads_per_sec(),
        if r.safety_ok { "OK" } else { "VIOLATED" },
        if r.liveness_ok { "OK" } else { "STUCK" },
    );
    println!("       phases: {}", r.tick_phases);
}
