//! E6 — Theorem 2: no regular register in a fully asynchronous dynamic
//! system.
//!
//! Both protocols run under heavy-tailed delays with no GST. The
//! timeout-based synchronous protocol loses **safety** (its waits expire
//! before the traffic arrives) — increasingly so as the tail fattens; the
//! quorum-based ES protocol never lies but loses **liveness** (operations
//! by staying processes block). Together these are the two horns of the
//! impossibility.

use dynareg_bench::{expectation, header};
use dynareg_net::{DelayFault, FaultPlan};
use dynareg_sim::{NodeId, Span, Time};
use dynareg_testkit::experiment::{run_seeds, Aggregate};
use dynareg_testkit::table::Table;
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_async_impossibility");
    header(
        "E6",
        "Theorem 2 (asynchronous impossibility)",
        "any protocol loses safety (if it trusts time) or liveness (if it waits for quorums)",
    );

    let (n, delta) = (15, Span::ticks(3));
    println!("horn 1 — sync protocol (assumed δ̂ = {delta}) over async delays, tail cap sweep:\n");
    let mut t1 = Table::new(["tail cap (×δ̂)", "unsafe runs", "violations", "stuck runs"]);
    for cap in [1u64, 2, 4, 8, 16] {
        let agg = Aggregate::from_reports(&run_seeds(0..8, |seed| {
            Scenario::synchronous_over_async(n, delta, cap)
                .churn_fraction_of_bound(0.8)
                .duration(Span::ticks(400))
                .reads_per_tick(2.0)
                .seed(seed)
                .run()
        }));
        t1.row([
            cap.to_string(),
            format!("{}/{}", agg.unsafe_runs, agg.runs),
            agg.safety_violations.to_string(),
            format!("{}/{}", agg.stuck_runs, agg.runs),
        ]);
    }
    println!("{t1}");

    println!("\nhorn 2 — ES protocol, GST = ∞, asynchronous starvation adversary:");
    println!("every message towards one victim process is delayed indefinitely —");
    println!("legal in an asynchronous system (no bound exists to violate), illegal");
    println!("in a synchronous one. Stochastic asynchrony alone does NOT starve the");
    println!("quorums (Lemma 5's mutual-help is robust); the worst case does.\n");
    let mut t2 = Table::new([
        "adversary",
        "unsafe runs",
        "stuck runs",
        "victim ops stuck",
        "other ops stuck",
    ]);
    for starve in [false, true] {
        // The designated writer is churn-protected, so its blocked operations
        // are genuine liveness violations (it stays in the system forever).
        let victim = NodeId::from_raw(0);
        let reports = run_seeds(0..6, |seed| {
            let mut s = Scenario::es_over_async(n, delta, 10)
                .churn_fraction_of_bound(1.0)
                .duration(Span::ticks(600))
                .drain(Span::ticks(200))
                .reads_per_tick(1.0)
                .seed(seed);
            if starve {
                s = s.faults(FaultPlan::none().with(DelayFault::starve_recipient(
                    victim,
                    Time::ZERO,
                    Time::MAX,
                    Span::ticks(1_000_000),
                )));
            }
            s.run()
        });
        let agg = Aggregate::from_reports(&reports);
        let victim_stuck: usize = reports
            .iter()
            .flat_map(|r| r.liveness.stuck_ops.iter().map(move |&op| (r, op)))
            .filter(|(r, op)| r.history.get(*op).is_some_and(|rec| rec.node == victim))
            .count();
        t2.row([
            if starve {
                "victim starved"
            } else {
                "stochastic only"
            }
            .to_string(),
            format!("{}/{}", agg.unsafe_runs, agg.runs),
            format!("{}/{}", agg.stuck_runs, agg.runs),
            victim_stuck.to_string(),
            (agg.stuck_ops - victim_stuck).to_string(),
        ]);
    }
    println!("{t2}");
    expectation(
        "horn 1: zero violations at cap 1×δ̂ (delays within the assumed bound) \
         and growing violations as the tail fattens — no finite δ̂ suffices. \
         horn 2: zero unsafe runs always (quorums cannot be wrong); the \
         stochastic row is also live, but the starvation adversary blocks the \
         victim's operations forever — the liveness horn of Theorem 2.",
    );
}
