//! E2 — Figures 1–2 + Theorem 1: the synchronous protocol is a correct
//! regular register under `c ≤ 1/(3δ)`, with local reads, δ-writes and
//! {δ, 3δ} joins.

use dynareg_bench::{expectation, header};
use dynareg_sim::Span;
use dynareg_testkit::experiment::{run_seeds, Aggregate};
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_sync_protocol");
    header(
        "E2",
        "Figures 1–2, Theorem 1 (synchronous protocol)",
        "under c = ½·1/(3δ): safety + liveness hold; read latency 0, write latency δ, join ∈ {δ, 3δ}",
    );

    let mut table = Table::new([
        "n",
        "δ",
        "c",
        "unsafe runs",
        "stuck runs",
        "read lat",
        "write lat",
        "join lat (mean)",
        "msgs/run",
    ]);
    for &(n, delta) in &[
        (20usize, 2u64),
        (20, 5),
        (20, 10),
        (100, 2),
        (100, 5),
        (100, 10),
    ] {
        let reports = run_seeds(0..6, |seed| {
            Scenario::synchronous(n, Span::ticks(delta))
                .churn_fraction_of_bound(0.5)
                .duration(Span::ticks(500))
                .reads_per_tick(2.0)
                .seed(seed)
                .run()
        });
        let agg = Aggregate::from_reports(&reports);
        let c = reports[0].churn_rate;
        table.row([
            n.to_string(),
            delta.to_string(),
            format!("{c:.4}"),
            format!("{}/{}", agg.unsafe_runs, agg.runs),
            format!("{}/{}", agg.stuck_runs, agg.runs),
            fnum(agg.mean_read_latency),
            fnum(agg.mean_write_latency),
            fnum(agg.mean_join_latency),
            fnum(agg.mean_messages),
        ]);
    }
    println!("{table}");
    expectation(
        "zero unsafe and zero stuck rows everywhere; read latency exactly 0 \
         (the protocol's design goal), write latency exactly δ, join latency \
         between δ (fast path) and 3δ (inquiry path); message volume grows \
         with n (broadcasts) and shrinks with δ (fewer writes+joins per tick).",
    );
}
