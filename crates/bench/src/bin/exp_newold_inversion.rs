//! E1 — the unnumbered new/old inversion figure of §1.
//!
//! A regular register may serve two sequential reads in write order
//! inversion; an atomic one may not. We quantify inversion frequency under
//! a read-heavy load for (a) the synchronous protocol (regular), (b) the
//! ES protocol (regular), (c) the ES protocol with the ABD write-back
//! extension (atomic).

use dynareg_bench::{expectation, header};
use dynareg_sim::{Span, Time};
use dynareg_testkit::experiment::run_seeds;
use dynareg_testkit::table::Table;
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_newold_inversion");
    header(
        "E1",
        "§1 figure (new/old inversion)",
        "regular registers admit new/old inversions; atomic ones do not",
    );

    let seeds = 8u64;
    let mut table = Table::new([
        "protocol",
        "semantics",
        "reads",
        "inversions",
        "runs with inversions",
        "safety",
    ]);
    let mut run_row = |name: &str, semantics: &str, make: &(dyn Fn(u64) -> Scenario + Sync)| {
        let reports = run_seeds(0..seeds, |seed| {
            make(seed)
                .duration(Span::ticks(400))
                .reads_per_tick(5.0)
                .write_every(Span::ticks(12))
                .seed(seed)
                .run()
        });
        let reads: usize = reports.iter().map(|r| r.reads_checked()).sum();
        let inversions: usize = reports.iter().map(|r| r.inversions()).sum();
        let runs_with: usize = reports.iter().filter(|r| r.inversions() > 0).count();
        let safe = reports.iter().all(|r| r.safety.is_ok());
        table.row([
            name.to_string(),
            semantics.to_string(),
            reads.to_string(),
            inversions.to_string(),
            format!("{runs_with}/{seeds}"),
            if safe {
                "regular-OK".into()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    };

    run_row("sync (Fig 1-2)", "regular", &|_s| {
        Scenario::synchronous(10, Span::ticks(6))
    });
    run_row("es (Fig 4-6)", "regular", &|_s| {
        Scenario::eventually_synchronous(10, Span::ticks(6), Time::ZERO)
    });
    run_row("es + write-back", "atomic", &|_s| {
        Scenario::es_atomic(10, Span::ticks(6), Time::ZERO)
    });

    println!("{table}");
    expectation(
        "inversions > 0 for the regular protocols (most readily for the \
         synchronous one, whose local reads sample the WRITE wave mid-flight) \
         while regular safety still holds; exactly 0 for the atomic variant.",
    );
}
