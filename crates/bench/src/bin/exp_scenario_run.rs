//! SCENARIO — deterministic replay of one scenario file.
//!
//! Loads a `scenarios/*.dyn` file (see `dynareg_testkit::parse_scenario`
//! for the format), optionally overrides the seed and duration, runs the
//! world, and prints the per-key verdicts, the fault-drop accounting, the
//! **scenario hash** (FNV-1a over the file bytes and the effective seed)
//! and the **run digest** (the fleet event-stream digest). Replays are
//! byte-identical: the same file and seed always print the same hash and
//! digest, which is what the CI `scenario-corpus` job `cmp`-gates.
//!
//! With `--obs` (implied by `--trace-out` / `--timeseries-out`) the run
//! carries the observability layer: causal op spans with per-message
//! fates, a bounded flight-recorder trace ring, and an optional per-tick
//! gauge timeseries. Observability never touches the event stream — the
//! printed run digest is identical with and without it (CI's obs-smoke
//! gate `cmp`s exactly this). When any key's verdict fails, the stuck
//! operations' `why_stuck` chains — which messages were lost, and to
//! which fault rule — are printed, and the full flight-recorder dump
//! (JSONL, `dynareg-flight/1`) lands in `--trace-out`.
//!
//! Usage: `exp_scenario_run <scenario.dyn> [--seed S]
//! [--duration-ticks T] [--digest-out PATH] [--obs] [--trace-out PATH]
//! [--timeseries-out PATH]`

use dynareg_bench::{header, Cli};
use dynareg_fleet::run_digest;
use dynareg_sim::Span;
use dynareg_testkit::{parse_scenario, scenario_hash, ObsConfig, RunReport};

const USAGE: &str = "exp_scenario_run <scenario.dyn> [--seed S] [--duration-ticks T] \
     [--digest-out PATH] [--obs] [--trace-out PATH] [--timeseries-out PATH]";

struct Args {
    path: String,
    seed: Option<u64>,
    duration_ticks: Option<u64>,
    digest_out: Option<String>,
    obs: bool,
    trace_out: Option<String>,
    timeseries_out: Option<String>,
}

fn parse_args() -> Args {
    let mut cli = Cli::from_env(USAGE);
    let mut parsed = Args {
        path: String::new(),
        seed: None,
        duration_ticks: None,
        digest_out: None,
        obs: false,
        trace_out: None,
        timeseries_out: None,
    };
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--seed" => parsed.seed = Some(cli.parsed("--seed", "a u64")),
            "--duration-ticks" => {
                parsed.duration_ticks = Some(cli.parsed_where(
                    "--duration-ticks",
                    "a positive integer",
                    |&t: &u64| t > 0,
                ));
            }
            "--digest-out" => parsed.digest_out = Some(cli.value("--digest-out")),
            "--obs" => parsed.obs = true,
            "--trace-out" => parsed.trace_out = Some(cli.value("--trace-out")),
            "--timeseries-out" => parsed.timeseries_out = Some(cli.value("--timeseries-out")),
            flag if flag.starts_with('-') => cli.fail(&format!("unknown argument `{flag}`")),
            path if parsed.path.is_empty() => parsed.path = path.to_string(),
            extra => cli.fail(&format!("unexpected extra argument `{extra}`")),
        }
    }
    if parsed.path.is_empty() {
        cli.fail("missing scenario file");
    }
    // Either output file wants obs data, so asking for one opts in.
    parsed.obs |= parsed.trace_out.is_some() || parsed.timeseries_out.is_some();
    parsed
}

fn key_lines(report: &RunReport) {
    let fmt =
        |key: String, safe: bool, inversions: usize, live: bool, reads: usize, stuck: usize| {
            println!(
            "  {key:<4} safety={} inversions={inversions} liveness={} reads={reads} stuck={stuck}",
            if safe { "OK" } else { "VIOLATED" },
            if live { "OK" } else { "STUCK" },
        );
        };
    fmt(
        "r0".to_string(),
        report.safety.is_ok(),
        report.atomicity.inversions,
        report.liveness.is_ok(),
        report.safety.checked_reads,
        report.liveness.incomplete_stayer_count(),
    );
    for k in &report.extra_keys {
        fmt(
            k.key.to_string(),
            k.safety.is_ok(),
            k.atomicity.inversions,
            k.liveness.is_ok(),
            k.safety.checked_reads,
            k.liveness.incomplete_stayer_count(),
        );
    }
}

fn main() {
    let args = parse_args();
    let cli = Cli::new(Vec::new(), USAGE);

    let text = match std::fs::read_to_string(&args.path) {
        Ok(text) => text,
        Err(e) => cli.fail(&format!("cannot read `{}`: {e}", args.path)),
    };
    let mut spec = match parse_scenario(&text) {
        Ok(spec) => spec,
        Err(e) => cli.fail(&format!("{}:{}", args.path, e)),
    };
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(ticks) = args.duration_ticks {
        spec.duration = Span::ticks(ticks);
    }
    let hash = scenario_hash(&text, spec.seed);

    header(
        "SCENARIO",
        &format!("deterministic replay of {}", args.path),
        "same file + seed ⇒ same scenario hash and run digest, every time",
    );
    println!(
        "scenario: n={} δ={} duration={} seed={} churn={:?}",
        spec.n, spec.delta, spec.duration, spec.seed, spec.churn
    );
    let fault_shape = spec.faults.as_ref().map_or_else(
        || "none".to_string(),
        |p| {
            format!(
                "{} delay rule(s), {} partition(s), {} drop rule(s), regions={}",
                p.delay_rules().len(),
                p.partitions().len(),
                p.drops().len(),
                p.region().map_or(0, |r| r.regions()),
            )
        },
    );
    println!("faults:   {fault_shape}\n");

    let partition_rules = spec.faults.as_ref().map_or(0, |p| p.partitions().len());
    let drop_rules = spec.faults.as_ref().map_or(0, |p| p.drops().len());
    let report = if args.obs {
        let obs = ObsConfig {
            spans: true,
            timeseries_every: args.timeseries_out.as_ref().map(|_| 1),
            flight_recorder: Some(4096),
            tick_profile: false,
        };
        spec.run_observed(obs)
    } else {
        spec.run()
    };

    println!("{}\n", report.summary());
    println!("per-key space report:");
    key_lines(&report);

    println!("\nfault drops: {} total", report.fault_drops);
    for i in 0..partition_rules {
        println!(
            "  partition[{i}]: {}",
            report
                .metrics
                .keyed_counter("net.dropped.fault.partition", i as u32)
        );
    }
    for i in 0..drop_rules {
        println!(
            "  drop[{i}]:      {}",
            report
                .metrics
                .keyed_counter("net.dropped.fault.drop", i as u32)
        );
    }
    if report.delta_overruns > 0 {
        // δ-derived verdicts assume the bound holds; flag every breach.
        print!(
            "\nWARNING: {} deliveries exceeded the configured δ={} after the \
             synchrony guarantee began",
            report.delta_overruns, report.delta
        );
        if let Some((at, from, to, latency)) = report.delta_overrun_example {
            print!(" (first: {from} -> {to} at {at}, effective latency {latency})");
        }
        println!();
    }
    if report.inquiry_full() > 0 {
        println!(
            "shard starvation: {} INQUIRY_FULL message(s) over {} re-inquiry round(s)",
            report.inquiry_full(),
            report.reinquiry_rounds()
        );
    }
    if report.join_retransmits() > 0 {
        println!(
            "join retransmits: {} silence-triggered inquiry re-broadcast(s) \
             (loss-tolerant handshake; docs/PROTOCOL.md)",
            report.join_retransmits()
        );
    }

    if let Some(obs) = &report.obs {
        let stuck = obs.why_stuck_all();
        if !stuck.is_empty() {
            println!("\nstuck operations ({}):", stuck.len());
            for why in &stuck {
                print!("{why}");
            }
        }
        if let Some(path) = &args.trace_out {
            let dump = obs.flight_dump(&report.trace);
            if let Err(e) = std::fs::write(path, dump) {
                cli.fail(&format!("cannot write `{path}`: {e}"));
            }
            println!("flight-recorder dump written to {path}");
        }
        if let Some(path) = &args.timeseries_out {
            let ts = obs
                .timeseries
                .as_ref()
                .expect("--timeseries-out enables the recorder");
            if let Err(e) = std::fs::write(path, ts.to_jsonl()) {
                cli.fail(&format!("cannot write `{path}`: {e}"));
            }
            println!("timeseries written to {path}");
        }
    }

    let digest = run_digest(&report);
    println!("\nscenario hash: {hash:#018x}");
    println!("run digest:    {digest:#018x}");

    if let Some(path) = args.digest_out {
        let line = format!("scenario={hash:#018x} digest={digest:#018x}\n");
        if let Err(e) = std::fs::write(&path, line) {
            cli.fail(&format!("cannot write `{path}`: {e}"));
        }
        println!("digest line written to {path}");
    }
}
