//! PHASE — the empirical churn/synchrony phase diagram (Theorem 1's map).
//!
//! Sweeps the synchronous protocol over a grid of `(c, δ)` points — 200 by
//! default, spanning both sides of Theorem 1's feasibility bound
//! `c = 1/(3δ)` under the worst-case adversary (exact-`δ` delays,
//! active-first eviction, migrating writer) — on `dynareg-fleet`'s
//! work-stealing thread pool, and reduces the fleet into the phase
//! diagram: per-cell verdicts, per-`δ` feasibility frontiers vs the
//! analytic curve, latency percentiles and the Lemma 2 active-set floor.
//!
//! Output is twofold: rendered tables + the compact phase grid on stdout,
//! and machine-readable `BENCH_phase.json`. The JSON is a pure function of
//! `(sweep spec, master seed)` — running with `--threads 1` and
//! `--threads N` produces **byte-identical** files (the fleet tier's
//! determinism contract; CI smoke-checks a scaled-down grid).
//!
//! Usage: `exp_phase_diagram [--threads N] [--scale full|smoke]
//! [--seed S] [--out PATH]` (defaults: all cores, full, 0xBA1D0,
//! `BENCH_phase.json`).

use std::time::Instant;

use dynareg_bench::{expectation, header, Cli};
use dynareg_fleet::{default_threads, run_sweep, SweepDomain, SweepSpec};
use dynareg_sim::Span;

const USAGE: &str = "exp_phase_diagram [--threads N] [--scale full|smoke] [--seed S] [--out PATH]";

struct Args {
    threads: usize,
    scale: String,
    master_seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        threads: default_threads(),
        scale: "full".to_string(),
        master_seed: 0x000B_A1D0,
        out: "BENCH_phase.json".to_string(),
    };
    let mut cli = Cli::from_env(USAGE);
    while let Some(flag) = cli.next_arg() {
        match flag.as_str() {
            "--threads" => {
                parsed.threads =
                    cli.parsed_where("--threads", "a positive integer", |&t: &usize| t > 0);
            }
            "--scale" => {
                let scale = cli.value("--scale");
                if scale != "full" && scale != "smoke" {
                    cli.fail(&format!("--scale takes full|smoke, got `{scale}`"));
                }
                parsed.scale = scale;
            }
            "--seed" => parsed.master_seed = cli.parsed("--seed", "a u64"),
            "--out" => parsed.out = cli.value("--out"),
            other => cli.fail(&format!("unknown argument `{other}`")),
        }
    }
    parsed
}

/// The sweep a given scale runs: `full` is the 200-point Theorem 1 grid,
/// `smoke` a 12-point miniature of the same shape for CI.
fn sweep_for(scale: &str, master_seed: u64) -> SweepSpec {
    let mut spec = SweepSpec::theorem1_default();
    spec.master_seed = master_seed;
    if scale == "smoke" {
        spec.domain = SweepDomain::Grid {
            deltas: vec![2, 4],
            fractions: vec![0.3, 0.6, 0.9, 1.2, 2.0, 3.0],
        };
        spec.populations = vec![12];
        spec.duration = Span::ticks(180);
    }
    spec
}

#[allow(clippy::disallowed_methods)] // bench harness throughput timing, outside the simulation
fn main() {
    let args = parse_args();
    header(
        "PHASE",
        "empirical churn/synchrony phase diagram (dynareg-fleet sweep)",
        "feasible exactly below c = 1/(3δ); the measured frontier brackets the analytic curve",
    );

    let spec = sweep_for(&args.scale, args.master_seed);
    let runs = spec.run_count();
    println!(
        "sweep: {} runs ({} scale) on {} thread(s), master seed {:#x}\n",
        runs, args.scale, args.threads, args.master_seed
    );

    let start = Instant::now(); // detlint: allow(wall-clock) -- bench harness throughput timing, outside the simulation
    let report = run_sweep(&spec, args.threads);
    let secs = start.elapsed().as_secs_f64();

    println!("{}", report.phase_grid());
    println!("{}", report.cell_table().markdown());
    println!("feasibility frontier vs Theorem 1:");
    println!("{}", report.frontier_table().markdown());
    println!(
        "fleet: {} runs in {:.2}s = {:.1} runs/sec, digest {:#018x}, frontier brackets c*: {}",
        report.total_runs,
        secs,
        report.total_runs as f64 / secs.max(1e-9),
        report.fleet_digest,
        report.frontier_brackets_bound(),
    );

    // The JSON is deterministic (no wall-clock, no thread count): identical
    // for --threads 1 and --threads N.
    std::fs::write(&args.out, report.json()).expect("write phase-diagram json");
    println!("wrote {}", args.out);

    expectation(
        "every δ row is feasible ('#') left of the '|' boundary and \
         infeasible ('.') at and beyond it: availability — not safety — is \
         what collapses, and the empirical frontier hugs c = 1/(3δ) \
         (fraction 1.0) at every δ.",
    );
}
