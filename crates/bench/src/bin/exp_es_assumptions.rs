//! E8 — §5.2's two assumptions, violated on purpose.
//!
//! (a) churn sweep across the ES threshold `1/(3δn)` and far beyond it:
//!     moderate churn above the (very conservative) threshold still works
//!     on average, but extreme churn erodes the active majority and blocks
//!     quorums;
//! (b) forced majority loss: churn so violent that `|A(τ)| > n/2` fails —
//!     joins and reads stop terminating (liveness), while safety persists.

use dynareg_bench::{expectation, header};
use dynareg_churn::LeaveSelector;
use dynareg_sim::{Span, Time};
use dynareg_testkit::experiment::run_seeds;
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_es_assumptions");
    header(
        "E8",
        "§5.2 assumptions (majority of actives; c ≤ 1/(3δn))",
        "the protocol blocks — never lies — when its assumptions break",
    );

    let (n, delta) = (15usize, Span::ticks(3));
    let quorum = n / 2 + 1;
    println!("churn sweep (multiples of the ES threshold 1/(3δn)), ActiveFirst eviction:\n");
    let mut table = Table::new([
        "c / (1/3δn)",
        "min |A|",
        "mean |A|",
        "majority held?",
        "unsafe runs",
        "stuck runs",
        "stuck ops",
    ]);
    for fraction in [0.5, 1.0, 4.0, 16.0, 48.0, 96.0] {
        let reports = run_seeds(0..6, |seed| {
            Scenario::eventually_synchronous(n, delta, Time::ZERO)
                .churn_fraction_of_bound(fraction)
                .leave_selector(LeaveSelector::ActiveFirst)
                .duration(Span::ticks(600))
                .drain(Span::ticks(150))
                .reads_per_tick(1.0)
                .seed(seed)
                .run()
        });
        let min_active = reports
            .iter()
            .filter_map(|r| r.metrics.histogram("gauge.active").and_then(|h| h.min()))
            .min()
            .unwrap_or(0);
        let mean_active = reports
            .iter()
            .filter_map(|r| r.metrics.histogram("gauge.active").and_then(|h| h.mean()))
            .sum::<f64>()
            / reports.len() as f64;
        let unsafe_runs = reports.iter().filter(|r| !r.safety.is_ok()).count();
        let stuck_runs = reports.iter().filter(|r| !r.liveness.is_ok()).count();
        let stuck_ops: usize = reports
            .iter()
            .map(|r| r.liveness.incomplete_stayer_count())
            .sum();
        table.row([
            fnum(fraction),
            min_active.to_string(),
            fnum(mean_active),
            if min_active as usize >= quorum {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            format!("{unsafe_runs}/6"),
            format!("{stuck_runs}/6"),
            stuck_ops.to_string(),
        ]);
    }
    println!("{table}");
    expectation(
        "safety column is clean everywhere (quorums cannot be wrong). While \
         min |A| stays at or above the majority of n (= {quorum} here), \
         operations terminate; once violent churn drags the active set below \
         the majority, quorums cannot form and stuck operations appear — the \
         liveness face of losing the §5.2 assumption. The paper's threshold \
         1/(3δn) is conservative: moderate multiples of it still leave a \
         healthy majority.",
    );
}
