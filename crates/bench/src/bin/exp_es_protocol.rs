//! E7 — Figures 4–6 + Theorems 3–4: the eventually synchronous protocol.
//!
//! GST sweep: safety must hold in every cell (Theorem 4 — it never depends
//! on synchrony); operations terminate once the system stabilizes
//! (Theorem 3); latencies stretch with GST because pre-GST quorums wait out
//! the heavy-tailed delays.

use dynareg_bench::{expectation, header};
use dynareg_sim::{Span, Time};
use dynareg_testkit::experiment::{run_seeds, Aggregate};
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_es_protocol");
    header(
        "E7",
        "Figures 4–6, Theorems 3–4 (eventually synchronous protocol)",
        "safety always; termination once synchronous; majority quorums pay one RTT per read, two per write",
    );

    let mut table = Table::new([
        "n",
        "GST",
        "unsafe runs",
        "stuck runs",
        "join lat",
        "read lat",
        "write lat",
        "msgs/run",
    ]);
    for &n in &[20usize, 100] {
        for gst in [0u64, 200, 400] {
            let reports = run_seeds(0..6, |seed| {
                Scenario::eventually_synchronous(n, Span::ticks(4), Time::at(gst))
                    .churn_fraction_of_bound(0.5)
                    .duration(Span::ticks(800))
                    .drain(Span::ticks(250))
                    .reads_per_tick(1.0)
                    .seed(seed)
                    .run()
            });
            let agg = Aggregate::from_reports(&reports);
            table.row([
                n.to_string(),
                format!("t{gst}"),
                format!("{}/{}", agg.unsafe_runs, agg.runs),
                format!("{}/{}", agg.stuck_runs, agg.runs),
                fnum(agg.mean_join_latency),
                fnum(agg.mean_read_latency),
                fnum(agg.mean_write_latency),
                fnum(agg.mean_messages),
            ]);
        }
    }
    println!("{table}");
    expectation(
        "zero unsafe runs in every row; zero stuck runs given the post-GST \
         drain; join/read latencies of roughly one quorum round trip and \
         write latencies of roughly two (its phase-1 read); message volume \
         scales with n (quorum broadcasts). Note the *means* barely move \
         with GST: a majority quorum only waits for the fastest ⌈n/2⌉+1 \
         replies, so it rides the fast side of the pre-GST heavy tail — \
         eventual synchrony is needed for worst-case termination (Lemma 5's \
         adversary), not for average latency, which is why E6's liveness \
         horn needs an explicit starvation adversary.",
    );
}
