//! E9 — §3.3's "fast reads" design goal, quantified.
//!
//! The synchronous protocol makes reads free (local, zero messages) by
//! paying at joins and writes; the ES protocol charges every read a quorum
//! round trip and Θ(n) messages. We sweep n and compare latencies and
//! per-operation message complexity.

use dynareg_bench::{expectation, header};
use dynareg_sim::{Span, Time};
use dynareg_testkit::experiment::{run_seeds, Aggregate};
use dynareg_testkit::table::{fnum, Table};
use dynareg_testkit::Scenario;

fn main() {
    dynareg_bench::expect_no_args("exp_latency_comparison");
    header(
        "E9",
        "§3.3 design point: read cost (sync vs ES)",
        "sync reads: 0 latency, 0 messages; ES reads: ≥1 RTT, Θ(n) messages",
    );

    let delta = Span::ticks(4);
    let mut table = Table::new([
        "n",
        "protocol",
        "read lat (mean)",
        "write lat (mean)",
        "join lat (mean)",
        "msgs per read",
        "msgs per op (all)",
    ]);
    for &n in &[10usize, 25, 50, 100, 200] {
        for sync in [true, false] {
            let reports = run_seeds(0..4, |seed| {
                let s = if sync {
                    Scenario::synchronous(n, delta)
                } else {
                    Scenario::eventually_synchronous(n, delta, Time::ZERO)
                };
                s.churn_rate(0.001)
                    .duration(Span::ticks(500))
                    .reads_per_tick(1.0)
                    .write_every(Span::ticks(16))
                    .seed(seed)
                    .run()
            });
            let agg = Aggregate::from_reports(&reports);
            // Messages attributable to reads: READ broadcasts + their
            // REPLYs (ES only; the sync protocol has no read messages).
            let read_msgs: u64 = reports
                .iter()
                .flat_map(|r| r.messages.iter())
                .filter(|(l, _)| *l == "READ")
                .map(|(_, c)| *c)
                .sum();
            let reply_msgs: u64 = reports
                .iter()
                .flat_map(|r| r.messages.iter())
                .filter(|(l, _)| *l == "REPLY")
                .map(|(_, c)| *c)
                .sum();
            let reads: usize = reports.iter().map(|r| r.reads_checked()).sum();
            let ops: usize = reports.iter().map(|r| r.liveness.completed).sum();
            let total: u64 = reports.iter().map(|r| r.total_messages).sum();
            let per_read = if sync {
                0.0
            } else {
                (read_msgs + reply_msgs) as f64 / reads.max(1) as f64
            };
            table.row([
                n.to_string(),
                if sync { "sync" } else { "es" }.to_string(),
                fnum(agg.mean_read_latency),
                fnum(agg.mean_write_latency),
                fnum(agg.mean_join_latency),
                fnum(per_read),
                fnum(total as f64 / ops.max(1) as f64),
            ]);
        }
    }
    println!("{table}");
    expectation(
        "sync read latency and msgs-per-read are exactly 0 at every n; ES \
         reads cost roughly one round trip in latency and ≈ 2n messages \
         (broadcast + replies, the replies majority-counted but all actives \
         answer). Write and join costs are the mirror image: the sync \
         protocol pays δ/3δ waits, the ES protocol pays quorum rounds that \
         also scale in messages with n — who wins depends entirely on the \
         read:write ratio, the trade the paper designs for.",
    );
}
