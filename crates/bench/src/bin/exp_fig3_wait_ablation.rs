//! E3 — Figure 3: why the join operation waits `δ` before inquiring.
//!
//! Part 1 reproduces the figure *exactly*: a four-process scripted schedule
//! (writer + two holders + one joiner, adversarial-but-legal delays, the
//! writer departing right after its write returns) where the ablated
//! protocol serves a stale read and the real protocol does not.
//!
//! Part 2 sanity-checks the ablation statistically under benign random
//! delays: the race needs every replier simultaneously stale, so with many
//! repliers both variants look clean — the wait guards a *worst case*,
//! which is exactly why the paper argues it with a schedule, not a benchmark.

use dynareg_bench::{expectation, header};
use dynareg_churn::{ChurnDriver, LeaveSelector, NoChurn};
use dynareg_core::sync::SyncConfig;
use dynareg_net::delay::Fixed;
use dynareg_net::{DelayFault, FaultAction, FaultPlan};
use dynareg_sim::{IdSource, NodeId, Span, Time};
use dynareg_testkit::experiment::aggregate_seeds;
use dynareg_testkit::table::Table;
use dynareg_testkit::{
    OpAction, Scenario, ScriptedWorkload, SyncFactory, World, WorldConfig, WriterPolicy,
};
use dynareg_verify::{LivenessChecker, RegularityChecker};

const DELTA: u64 = 4;

/// The Figure 3 schedule (see `tests/fig3_wait_ablation.rs` for the
/// annotated timeline).
fn figure3_world(config: SyncConfig) -> World<SyncFactory> {
    let p0 = NodeId::from_raw(0);
    let script = ScriptedWorkload::new()
        .at(Time::at(10), p0, OpAction::Write(1))
        .at_arrival(Time::at(30), 0, OpAction::Read);
    let mut world = World::new(
        SyncFactory::new(config),
        WorldConfig {
            n: 3,
            initial: 0,
            delay: Box::new(Fixed::new(Span::ticks(1))),
            churn: ChurnDriver::new(
                Box::new(NoChurn),
                LeaveSelector::Random,
                IdSource::starting_at(3),
            ),
            workload: Box::new(script),
            seed: 0,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    world.set_faults(
        FaultPlan::none()
            .with(DelayFault {
                from: Some(p0),
                to: None,
                from_time: Time::at(10),
                until_time: Time::at(11),
                action: FaultAction::SetDelay(Span::ticks(DELTA)),
            })
            .with(DelayFault {
                from: None,
                to: Some(p0),
                from_time: Time::at(11),
                until_time: Time::at(20),
                action: FaultAction::SetDelay(Span::ticks(DELTA)),
            }),
    );
    world.schedule_join(Time::at(11));
    world.schedule_leave(Time::at(14), p0);
    world.run_until(Time::at(40));
    world
}

fn main() {
    dynareg_bench::expect_no_args("exp_fig3_wait_ablation");
    header(
        "E3",
        "Figure 3 (a vs b): the join wait(δ)",
        "without line 02 a post-write read can be stale; with it, never",
    );

    println!("part 1 — exact scripted reproduction (n=3+1 joiner, δ={DELTA}):\n");
    let mut table = Table::new(["variant", "read returned", "verdict", "join latency"]);
    for (name, cfg) in [
        (
            "Figure 3(a): no wait",
            SyncConfig::without_join_wait(Span::ticks(DELTA)),
        ),
        (
            "Figure 3(b): with wait",
            SyncConfig::new(Span::ticks(DELTA)),
        ),
    ] {
        let world = figure3_world(cfg);
        let report = RegularityChecker::check(world.history());
        let returned = world
            .history()
            .completed_reads()
            .next()
            .and_then(|r| match &r.kind {
                dynareg_verify::OpKind::Read { returned } => *returned,
                _ => None,
            });
        let join_latency = LivenessChecker::check(world.history())
            .join_latency
            .max()
            .unwrap();
        table.row([
            name.to_string(),
            format!("{returned:?}"),
            if report.is_ok() {
                "regular-OK".to_string()
            } else {
                format!("STALE ({} violation)", report.violation_count())
            },
            format!("{join_latency} ticks"),
        ]);
    }
    println!("{table}");

    println!("\npart 2 — the same ablation under benign random delays (n=20):\n");
    let mut table2 = Table::new(["variant", "unsafe runs", "violations", "reads"]);
    for (name, without) in [("with wait", false), ("without wait", true)] {
        let agg = aggregate_seeds(0..8, |seed| {
            let s = if without {
                Scenario::synchronous_without_join_wait(20, Span::ticks(DELTA))
            } else {
                Scenario::synchronous(20, Span::ticks(DELTA))
            };
            s.churn_fraction_of_bound(0.8)
                .write_every(Span::ticks(6))
                .duration(Span::ticks(400))
                .reads_per_tick(3.0)
                .seed(seed)
                .run()
        });
        table2.row([
            name.to_string(),
            format!("{}/{}", agg.unsafe_runs, agg.runs),
            agg.safety_violations.to_string(),
            agg.reads_checked.to_string(),
        ]);
    }
    println!("{table2}");
    expectation(
        "part 1: the (a) variant returns the stale 0 and is flagged, two δ \
         faster on the join; the (b) variant returns 1 and is clean. part 2: \
         both variants look clean under benign delays — the hazard is a \
         worst-case schedule, which is why the paper needs the wait for \
         *correctness*, not for average-case behaviour.",
    );
}
