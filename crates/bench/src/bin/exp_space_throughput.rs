//! PERF — register-space throughput: events/sec at 1 / 16 / 256 keys,
//! with and without key-sharded join replies.
//!
//! Measures the cost of the keyed register-space layer end-to-end: the
//! same churning synchronous world is driven through `RegisterSpace` at
//! three key counts under Zipf(1.0) key-popularity traffic, and the
//! engine's events/sec, message totals and per-key verdicts are recorded.
//! Because the join handshake is shared (one `JoinAll` inquiry, one
//! batched reply per responder), the *physical message count* stays
//! key-independent; what grows with `k` is the per-message payload and the
//! per-key bookkeeping. **Key-sharded replies** (`--shards G`) cut that
//! payload to `K/G` entries per responder — the default run includes a
//! `keys=256, shards=16` row so the committed baseline records how much of
//! the 16-key rate the sharded handshake buys back.
//!
//! The default set also carries two **multi-writer** rows (`W = 4` on the
//! 256-key space): a scaling row on the standard write beat — per-(node,
//! key) busy tracking lets four writers pipeline across keys, so completed
//! writes scale with `W` — and a hot-key contention row (write beat every
//! tick, Zipf-concentrated traffic) where the per-key occupancy cap and
//! per-node busy slots are actually exercised and contention shows up as
//! `writes_skipped_busy` instead of lost or serialized work.
//!
//! Prints wall-clock throughput and writes machine-readable JSON
//! (`BENCH_space.json` by default) — the register-space perf trajectory
//! future PRs measure against. `--digest-out PATH` additionally writes a
//! wall-clock-free event-stream digest per scenario; CI `cmp`s the digest
//! of `--shards 1` against `--legacy` (the constructor path without a
//! shard config) to hold the `G = 1 ≡ legacy` contract, and the digest of
//! `--writers 1` against the unflagged run to hold `W = 1 ≡ default`.
//!
//! Usage: `exp_space_throughput [--nodes N] [--ticks T] [--out PATH]
//! [--shards G | --legacy] [--writers W] [--digest-out PATH]`
//! (defaults: 1000 nodes, 600 ticks, `BENCH_space.json`, the mixed
//! `G ∈ {1, 16}` / `W ∈ {1, 4}` scenario set).

use std::time::Instant;

use dynareg_bench::{header, Cli};
use dynareg_churn::{ChurnDriver, ChurnModel, ConstantRate, LeaveSelector};
use dynareg_core::space::ShardConfig;
use dynareg_core::sync::SyncConfig;
use dynareg_net::delay::Synchronous;
use dynareg_sim::{DetRng, IdSource, NodeId, Span, Time};
use dynareg_testkit::{
    SpaceOf, SyncFactory, World, WorldConfig, WriterPolicy, ZipfKeys, ZipfWorkload,
};
use dynareg_verify::SpaceReport;

/// One measured scenario: what ran and how fast.
struct SpaceResult {
    keys: u32,
    shards: u32,
    writers: u32,
    write_every: u64,
    nodes: usize,
    ticks: u64,
    churn_rate: f64,
    events: u64,
    messages: u64,
    sim_secs: f64,
    reads_checked: usize,
    check_secs: f64,
    keys_touched: u32,
    writes_completed: u64,
    writes_skipped_busy: u64,
    writes_gated: u64,
    safety_ok: bool,
    liveness_ok: bool,
    /// FNV fold of every key's op stream plus the message/membership
    /// totals — wall-clock-free, so two runs of the same configuration
    /// compare byte-for-byte (the CI shard-equivalence gate).
    digest: u64,
}

impl SpaceResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.sim_secs.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"keys\": {},\n",
                "      \"shards\": {},\n",
                "      \"writers\": {},\n",
                "      \"write_every_ticks\": {},\n",
                "      \"nodes\": {},\n",
                "      \"ticks\": {},\n",
                "      \"churn_rate\": {:.8},\n",
                "      \"events\": {},\n",
                "      \"messages\": {},\n",
                "      \"sim_secs\": {:.4},\n",
                "      \"events_per_sec\": {:.0},\n",
                "      \"reads_checked\": {},\n",
                "      \"check_secs\": {:.4},\n",
                "      \"keys_touched\": {},\n",
                "      \"writes_completed\": {},\n",
                "      \"writes_skipped_busy\": {},\n",
                "      \"writes_gated\": {},\n",
                "      \"safety_ok\": {},\n",
                "      \"liveness_ok\": {}\n",
                "    }}"
            ),
            self.keys,
            self.shards,
            self.writers,
            self.write_every,
            self.nodes,
            self.ticks,
            self.churn_rate,
            self.events,
            self.messages,
            self.sim_secs,
            self.events_per_sec(),
            self.reads_checked,
            self.check_secs,
            self.keys_touched,
            self.writes_completed,
            self.writes_skipped_busy,
            self.writes_gated,
            self.safety_ok,
            self.liveness_ok,
        )
    }

    fn digest_json(&self) -> String {
        format!(
            "    {{\"keys\": {}, \"shards\": {}, \"writers\": {}, \"digest\": \"{:#018x}\"}}",
            self.keys, self.shards, self.writers, self.digest
        )
    }
}

/// FNV-1a 64-bit over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = seed;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Churn model wrapper going quiet at `stop_at` (mirrors the scenario
/// builder's drain behaviour without pulling in `Scenario`).
#[derive(Debug)]
struct StopAfter {
    inner: ConstantRate,
    stop_at: Time,
}

impl ChurnModel for StopAfter {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        if now >= self.stop_at {
            0
        } else {
            self.inner.refreshes(now, n, rng)
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        self.inner.nominal_rate()
    }
}

/// One row of the scenario set: a keyed world at a writer-roster size and
/// write beat.
#[derive(Clone, Copy)]
struct Row {
    keys: u32,
    /// `None` = the legacy constructor path (no shard config attached);
    /// `Some(g)` threads a `ShardConfig` — `Some(1)` must be observably
    /// identical to `None`.
    shards: Option<u32>,
    /// Writer-roster size and per-key write cap.
    writers: usize,
    /// Ticks between workload write beats (every roster writer attempts
    /// one write per beat).
    write_every: u64,
}

/// Runs one keyed world and measures simulation and checking separately.
#[allow(clippy::disallowed_methods)] // bench harness throughput timing, outside the simulation
fn run_space(row: Row, nodes: usize, ticks: u64) -> SpaceResult {
    let Row {
        keys,
        shards,
        writers,
        write_every,
    } = row;
    let delta = Span::ticks(3);
    // Absolute churn (≈0.4 joins/tick) so the per-join state transfer —
    // not the churn model — sets the load, as a production service would
    // see.
    let churn_rate = 0.4 / nodes as f64;
    let end = Time::at(ticks);
    let stop = Time::at(ticks.saturating_sub(delta.as_ticks() * 12).max(1));
    let mut factory = SpaceOf::new(SyncFactory::new(SyncConfig::new(delta)), keys);
    if let Some(groups) = shards {
        factory =
            factory.with_shards(ShardConfig::new(groups).with_reinquire_every(delta.times(4)));
    }
    let mut world = World::new(
        factory,
        WorldConfig {
            n: nodes,
            initial: 0,
            delay: Box::new(Synchronous::new(delta)),
            churn: ChurnDriver::new(
                Box::new(StopAfter {
                    inner: ConstantRate::new(churn_rate),
                    stop_at: stop,
                }),
                LeaveSelector::Random,
                IdSource::starting_at(nodes as u64),
            ),
            workload: Box::new(
                ZipfWorkload::new(ZipfKeys::new(keys, 1.0), Span::ticks(write_every), 8.0)
                    .stopping_at(stop),
            ),
            seed: 0x000B_A1D0,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers,
        },
    );
    for w in 0..writers as u64 {
        world.protect(NodeId::from_raw(w));
    }

    let sim_start = Instant::now(); // detlint: allow(wall-clock) -- bench harness throughput timing, outside the simulation
    world.run_until(end);
    let sim_secs = sim_start.elapsed().as_secs_f64();
    let events = world.events_processed();

    let (space, presence, metrics, _trace, network) = world.into_space_outputs();
    let writes_completed = metrics.counter("ops.write_completed");
    let writes_skipped_busy = metrics.counter("ops.skipped_busy");
    let writes_gated = metrics.counter("workload.write_gated");
    let messages = network.total_sent();
    let mut digest = fnv1a([], 0xCBF2_9CE4_8422_2325);
    for (_, h) in space.iter() {
        digest = fnv1a(format!("{:?}", h.ops()).bytes(), digest);
    }
    for v in [
        messages,
        presence.total_arrivals() as u64,
        presence.total_departures() as u64,
        events,
    ] {
        digest = fnv1a(v.to_le_bytes(), digest);
    }

    let check_start = Instant::now(); // detlint: allow(wall-clock) -- bench harness throughput timing, outside the simulation
    let report = SpaceReport::check(&space);
    let check_secs = check_start.elapsed().as_secs_f64();
    // Zipf coverage: keys that saw *client* traffic (joins are recorded in
    // every key's history, so "any op" would trivially count all keys).
    let keys_touched = space
        .iter()
        .filter(|(_, h)| {
            h.ops()
                .iter()
                .any(|r| !matches!(r.kind, dynareg_verify::OpKind::Join))
        })
        .count() as u32;

    SpaceResult {
        keys,
        shards: shards.unwrap_or(1).min(keys),
        writers: writers as u32,
        write_every,
        nodes,
        ticks,
        churn_rate,
        events,
        messages,
        sim_secs,
        reads_checked: report.total_reads_checked(),
        check_secs,
        keys_touched,
        writes_completed,
        writes_skipped_busy,
        writes_gated,
        safety_ok: report.all_regular(),
        liveness_ok: report.all_live(),
        digest,
    }
}

struct Args {
    nodes: usize,
    ticks: u64,
    out: String,
    digest_out: Option<String>,
    /// `None` = the default mixed scenario set; `Some(None)` = the legacy
    /// constructor path; `Some(Some(g))` = `--shards g`.
    mode: Option<Option<u32>>,
    /// `--writers W` pins every row to one roster size (and drops the
    /// default set's extra `W = 4` rows): the explicit-W output is
    /// row-comparable across W values, and `--writers 1` must digest-match
    /// the unflagged run (the CI `W = 1 ≡ default` gate).
    writers: Option<usize>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        nodes: 1000,
        ticks: 600,
        out: "BENCH_space.json".to_string(),
        digest_out: None,
        mode: None,
        writers: None,
    };
    let mut cli = Cli::from_env(
        "exp_space_throughput [--nodes N] [--ticks T] [--out PATH] \
         [--shards G | --legacy] [--writers W] [--digest-out PATH]",
    );
    while let Some(flag) = cli.next_arg() {
        match flag.as_str() {
            "--nodes" => {
                parsed.nodes =
                    cli.parsed_where("--nodes", "a positive integer", |&n: &usize| n > 0);
            }
            "--ticks" => {
                parsed.ticks = cli.parsed_where("--ticks", "a positive integer", |&t: &u64| t > 0);
            }
            "--out" => parsed.out = cli.value("--out"),
            "--digest-out" => parsed.digest_out = Some(cli.value("--digest-out")),
            "--shards" => {
                parsed.mode = Some(Some(cli.parsed_where(
                    "--shards",
                    "a positive integer",
                    |&g: &u32| g > 0,
                )));
            }
            "--legacy" => parsed.mode = Some(None),
            "--writers" => {
                parsed.writers =
                    Some(cli.parsed_where("--writers", "a positive integer", |&w: &usize| w > 0));
            }
            other => cli.fail(&format!("unknown argument `{other}`")),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    header(
        "PERF",
        "register-space throughput (shared handshake, sharded join replies, Zipf traffic)",
        "events/sec at 1 / 16 / 256 keys on one churning world",
    );

    // The default set carries the sharded-recovery row plus the two W = 4
    // rows (multi-key write scaling on the standard beat, hot-key
    // contention on a 1-tick beat); an explicit --shards/--legacy or
    // --writers runs the plain trio in that one mode (the CI equivalence
    // gates compare their digests).
    let w = args.writers.unwrap_or(1);
    let beat = 9; // the standard write beat, 3δ ticks
    let row = |keys, shards, writers, write_every| Row {
        keys,
        shards,
        writers,
        write_every,
    };
    let scenarios: Vec<Row> = match (args.mode, args.writers) {
        (None, None) => vec![
            row(1, Some(1), 1, beat),
            row(16, Some(1), 1, beat),
            row(256, Some(1), 1, beat),
            row(256, Some(16), 1, beat),
            row(256, Some(1), 4, beat),
            row(256, Some(1), 4, 1),
        ],
        (mode, _) => {
            let mode = mode.unwrap_or(Some(1));
            vec![
                row(1, mode, w, beat),
                row(16, mode, w, beat),
                row(256, mode, w, beat),
            ]
        }
    };

    let mut results = Vec::new();
    for &sc in &scenarios {
        let r = run_space(sc, args.nodes, args.ticks);
        println!(
            "k={:<4} G={:<3} W={:<2} beat={:<2} n={} ticks={} | {} events in {:.2}s = \
             {:.0} events/sec | {} msgs | {} writes (+{} busy-skips) | \
             {} reads checked over {} touched keys in {:.3}s | safety={} liveness={}",
            r.keys,
            r.shards,
            r.writers,
            r.write_every,
            r.nodes,
            r.ticks,
            r.events,
            r.sim_secs,
            r.events_per_sec(),
            r.messages,
            r.writes_completed,
            r.writes_skipped_busy + r.writes_gated,
            r.reads_checked,
            r.keys_touched,
            r.check_secs,
            if r.safety_ok { "OK" } else { "VIOLATED" },
            if r.liveness_ok { "OK" } else { "STUCK" },
        );
        assert!(
            r.safety_ok,
            "register space lost regularity at k={}",
            sc.keys
        );
        assert!(
            r.liveness_ok,
            "register space lost liveness at k={}",
            sc.keys
        );
        results.push(r);
    }
    // The shared handshake's signature: message counts do not scale with
    // the key count. (16 vs 256 keys, not 1 vs 16: a 1-key joiner that
    // received the in-flight WRITE during its wait skips the inquiry
    // entirely — Figure 1 line 03 — while a keyed space still inquires
    // for its other keys, so only multi-key counts are exactly equal.)
    assert_eq!(
        results[1].messages, results[2].messages,
        "physical message count must not scale with the key count"
    );
    if let (Some(full), Some(sharded)) = (
        results
            .iter()
            .find(|r| r.keys == 256 && r.shards == 1 && r.writers == 1),
        results.iter().find(|r| r.keys == 256 && r.shards > 1),
    ) {
        println!(
            "\nsharded recovery at 256 keys: G={} runs {:.1}x the full-reply rate \
             ({:.0} vs {:.0} events/sec)",
            sharded.shards,
            sharded.events_per_sec() / full.events_per_sec().max(1e-9),
            sharded.events_per_sec(),
            full.events_per_sec(),
        );
    }
    // The tentpole's signature: per-(node, key) busy tracking lets W
    // writers pipeline across keys, so completed writes scale with the
    // roster — the old global write slot pinned every row to the W = 1
    // count.
    if let (Some(w1), Some(w4)) = (
        results
            .iter()
            .find(|r| r.keys == 256 && r.shards == 1 && r.writers == 1),
        results
            .iter()
            .find(|r| r.keys == 256 && r.writers == 4 && r.write_every > 1),
    ) {
        let scale = w4.writes_completed as f64 / (w1.writes_completed as f64).max(1e-9);
        println!(
            "\nmulti-writer scaling at 256 keys: W=4 completes {:.1}x the W=1 writes \
             ({} vs {})",
            scale, w4.writes_completed, w1.writes_completed,
        );
        assert!(
            scale > 2.0,
            "W=4 must scale multi-key write throughput (got {scale:.2}x)"
        );
    }
    if let Some(hot) = results
        .iter()
        .find(|r| r.writers == 4 && r.write_every == 1)
    {
        println!(
            "hot-key contention (W=4, 1-tick beat, Zipf 1.0): {} writes completed, \
             {} attempts gated busy — contention is counted, never dropped or wedged",
            hot.writes_completed,
            hot.writes_skipped_busy + hot.writes_gated,
        );
        assert!(
            hot.writes_skipped_busy + hot.writes_gated > 0,
            "a 1-tick write beat at W=4 must actually contend"
        );
    }

    let body: Vec<String> = results.iter().map(SpaceResult::json).collect();
    let json = format!(
        "{{\n  \"schema\": \"dynareg-bench-space/3\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&args.out, &json).expect("write benchmark json");
    println!("\nwrote {}", args.out);

    if let Some(path) = &args.digest_out {
        let body: Vec<String> = results.iter().map(SpaceResult::digest_json).collect();
        let json = format!(
            "{{\n  \"schema\": \"dynareg-bench-space-digest/2\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(path, &json).expect("write digest json");
        println!("wrote {path}");
    }
}
