//! Shared plumbing for the `exp_*` experiment binaries.
//!
//! Each binary regenerates one row of the experiment index in
//! `DESIGN.md`/`EXPERIMENTS.md`: it prints the paper's predicted shape,
//! runs the parameter sweep, and emits a markdown table of measured
//! results. None of them take arguments — determinism means the printed
//! numbers are *the* numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints the standard experiment header.
pub fn header(id: &str, artifact: &str, claim: &str) {
    println!("==============================================================");
    println!("{id} — {artifact}");
    println!("claim: {claim}");
    println!("==============================================================\n");
}

/// Prints the closing expectation note.
pub fn expectation(text: &str) {
    println!("\nexpected shape (paper): {text}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn header_is_callable() {
        super::header("E0", "smoke", "none");
        super::expectation("none");
    }
}
