//! Shared plumbing for the `exp_*` experiment binaries.
//!
//! Each binary regenerates one row of the experiment index in
//! `DESIGN.md`/`EXPERIMENTS.md`: it prints the paper's predicted shape,
//! runs the parameter sweep, and emits a markdown table of measured
//! results. Most take no arguments — determinism means the printed
//! numbers are *the* numbers — and the few that do parse them through
//! [`Cli`], which turns every malformed invocation into a one-line usage
//! error on stderr and exit code 2 (never an unwrap backtrace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints the standard experiment header.
pub fn header(id: &str, artifact: &str, claim: &str) {
    println!("==============================================================");
    println!("{id} — {artifact}");
    println!("claim: {claim}");
    println!("==============================================================\n");
}

/// Prints the closing expectation note.
pub fn expectation(text: &str) {
    println!("\nexpected shape (paper): {text}");
}

/// The single error line a bad invocation prints to stderr.
pub fn usage_line(usage: &str, msg: &str) -> String {
    format!("error: {msg} — usage: {usage}")
}

fn exit_usage(usage: &str, msg: &str) -> ! {
    eprintln!("{}", usage_line(usage, msg));
    std::process::exit(2);
}

/// Guard for the argument-less experiment binaries: anything on the
/// command line is a mistake worth a usage error, not a silent ignore.
pub fn expect_no_args(bin: &str) {
    if let Some(extra) = std::env::args().nth(1) {
        exit_usage(
            bin,
            &format!("unexpected argument `{extra}` (this experiment takes none)"),
        );
    }
}

/// Minimal argv cursor for the experiment binaries that do take flags.
///
/// Every failure path — missing value, malformed number, unknown flag —
/// prints [`usage_line`] to stderr and exits with code 2; the happy path
/// never allocates more than the argv copy. Typical use:
///
/// ```no_run
/// use dynareg_bench::Cli;
///
/// let mut cli = Cli::from_env("exp_example [--ticks T]");
/// let mut ticks = 100u64;
/// while let Some(flag) = cli.next_arg() {
///     match flag.as_str() {
///         "--ticks" => ticks = cli.parsed_where("--ticks", "a positive integer", |&t: &u64| t > 0),
///         other => cli.fail(&format!("unknown argument `{other}`")),
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Cli {
    usage: &'static str,
    args: Vec<String>,
    next: usize,
}

impl Cli {
    /// A cursor over the process arguments (program name excluded).
    pub fn from_env(usage: &'static str) -> Cli {
        Cli::new(std::env::args().skip(1).collect(), usage)
    }

    /// A cursor over explicit arguments (for tests).
    pub fn new(args: Vec<String>, usage: &'static str) -> Cli {
        Cli {
            usage,
            args,
            next: 0,
        }
    }

    /// The next argument, advancing the cursor.
    pub fn next_arg(&mut self) -> Option<String> {
        let arg = self.args.get(self.next).cloned();
        if arg.is_some() {
            self.next += 1;
        }
        arg
    }

    /// The value following `flag`, or a usage error.
    pub fn value(&mut self, flag: &str) -> String {
        match self.next_arg() {
            Some(v) => v,
            None => self.fail(&format!("{flag} needs a value")),
        }
    }

    /// The value following `flag`, parsed, or a usage error naming the
    /// expected shape.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> T {
        let v = self.value(flag);
        match v.parse() {
            Ok(t) => t,
            Err(_) => self.fail(&format!("{flag} takes {what}, got `{v}`")),
        }
    }

    /// [`Cli::parsed`] plus a semantic check (positivity, ranges, …).
    pub fn parsed_where<T: std::str::FromStr>(
        &mut self,
        flag: &str,
        what: &str,
        ok: impl Fn(&T) -> bool,
    ) -> T {
        let v = self.value(flag);
        match v.parse() {
            Ok(t) if ok(&t) => t,
            _ => self.fail(&format!("{flag} takes {what}, got `{v}`")),
        }
    }

    /// Prints the one-line usage error and exits with code 2.
    pub fn fail(&self, msg: &str) -> ! {
        exit_usage(self.usage, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_callable() {
        header("E0", "smoke", "none");
        expectation("none");
    }

    #[test]
    fn usage_line_is_one_line() {
        let line = usage_line("exp_x [--n N]", "unknown argument `--m`");
        assert!(!line.contains('\n'));
        assert!(line.contains("exp_x"));
        assert!(line.contains("--m"));
    }

    #[test]
    fn cli_walks_flags_and_values() {
        let mut cli = Cli::new(
            vec![
                "--ticks".into(),
                "500".into(),
                "--out".into(),
                "x.json".into(),
            ],
            "test",
        );
        assert_eq!(cli.next_arg().as_deref(), Some("--ticks"));
        let ticks: u64 = cli.parsed("--ticks", "a u64");
        assert_eq!(ticks, 500);
        assert_eq!(cli.next_arg().as_deref(), Some("--out"));
        assert_eq!(cli.value("--out"), "x.json");
        assert_eq!(cli.next_arg(), None);
    }
}
