//! Micro-benchmarks of the deterministic event queue — the simulator's
//! hot path (every message, timer and tick goes through it).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynareg_sim::{EventQueue, Span, Time};
use std::hint::black_box;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);

    group.bench_function("schedule_pop_10k_ordered", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.schedule(Time::at(i), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e.payload);
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("schedule_pop_10k_interleaved", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                // Messages landing at scattered future instants, popped as
                // time advances — the realistic access pattern. Offsets are
                // relative to the watermark so no event lands in the past.
                for i in 0..10_000u64 {
                    q.schedule(q.now() + Span::ticks((i * 7919) % 64), i);
                    if i % 4 == 0 {
                        black_box(q.pop());
                    }
                }
                while let Some(e) = q.pop() {
                    black_box(e.payload);
                }
            },
            BatchSize::SmallInput,
        );
    });

    // The optimized regime: production-scale event counts with the
    // bounded-delay shape the tick wheel is built for (offsets within a
    // few δ of the watermark, occasional far timers crossing the wheel
    // horizon into the overflow level).
    group.bench_function("schedule_pop_100k_interleaved", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..100_000u64 {
                    let offset = if i % 97 == 0 {
                        // Far timer: parks in overflow, migrates later.
                        300 + (i * 31) % 700
                    } else {
                        (i * 7919) % 16
                    };
                    q.schedule(q.now() + Span::ticks(offset), i);
                    if i % 2 == 0 {
                        black_box(q.pop());
                    }
                }
                while let Some(e) = q.pop() {
                    black_box(e.payload);
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("broadcast_wave_n1000_100k_events", |b| {
        // The runtime's actual hot shape: per tick, a 1000-recipient wave
        // lands within δ=4 ticks of now, then the tick advances — 100
        // waves, 100k deliveries.
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for wave in 0..100u64 {
                    let base = Time::at(wave * 4);
                    for i in 0..1_000u32 {
                        q.schedule_class(base + Span::ticks(1 + u64::from(i) % 4), 0, i);
                    }
                    while q.peek_time().is_some_and(|t| t <= base + Span::ticks(4)) {
                        black_box(q.pop());
                    }
                }
                while let Some(e) = q.pop() {
                    black_box(e.seq);
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("same_instant_fifo_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1_000u64 {
                    q.schedule_class(Time::at(5), (i % 3) as u8, i);
                }
                while let Some(e) = q.pop() {
                    black_box(e.seq);
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_schedule_pop);
criterion_main!(benches);
