//! Micro-benchmarks of the network substrate: broadcast fan-out and
//! presence queries (the `A(τ, τ+3δ)` computation behind Lemma 2).

use criterion::{criterion_group, criterion_main, Criterion};
use dynareg_net::delay::Synchronous;
use dynareg_net::{Network, Presence};
use dynareg_sim::{DetRng, NodeId, Span, Time};
use std::hint::black_box;

fn presence_with(n: u64) -> Presence {
    let mut p = Presence::new();
    p.bootstrap((0..n).map(NodeId::from_raw), Time::ZERO);
    p
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    group.sample_size(20);

    for &n in &[100u64, 1000] {
        group.bench_function(format!("broadcast_fanout_n{n}"), |b| {
            let presence = presence_with(n);
            let mut net = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                let envs =
                    net.broadcast(&presence, Time::at(t), NodeId::from_raw(0), "BENCH", 7u64);
                black_box(envs.len());
            });
        });
    }

    group.bench_function("active_window_query_n1000", |b| {
        // A churned presence: 1000 nodes entering/leaving over 500 ticks.
        let mut p = Presence::new();
        for i in 0..1000u64 {
            let enter = i % 400;
            p.enter(NodeId::from_raw(i), Time::at(enter));
            p.activate(NodeId::from_raw(i), Time::at(enter + 5));
            if i % 3 == 0 {
                p.leave(NodeId::from_raw(i), Time::at(enter + 100));
            }
        }
        b.iter(|| {
            black_box(p.active_count_throughout(Time::at(200), Time::at(215)));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
