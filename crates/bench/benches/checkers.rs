//! Benchmarks of the consistency checkers: they run after every
//! experiment, so their cost bounds experiment throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dynareg_sim::{NodeId, Time};
use dynareg_verify::{AtomicityChecker, History, LivenessChecker, RegularityChecker};
use std::hint::black_box;

/// A history with `writes` serialized writes and `reads` reads scattered
/// between them (all valid).
fn big_history(writes: u64, reads: u64) -> History<u64> {
    let mut h: History<u64> = History::new(0);
    let writer = NodeId::from_raw(0);
    let mut t = 1u64;
    let reads_per_write = reads / writes.max(1);
    for v in 1..=writes {
        let w = h.invoke_write(writer, Time::at(t), v * 10);
        h.complete_write(w, Time::at(t + 3));
        t += 4;
        let last = v * 10;
        for k in 0..reads_per_write {
            let r = h.invoke_read(NodeId::from_raw(1 + k % 20), Time::at(t));
            h.complete_read(r, Time::at(t), last);
            t += 1;
        }
    }
    h
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkers");
    group.sample_size(15);

    let h = big_history(200, 10_000);
    group.bench_function("regularity_10k_reads", |b| {
        b.iter(|| black_box(RegularityChecker::check(&h).is_ok()));
    });
    group.bench_function("atomicity_10k_reads", |b| {
        b.iter(|| black_box(AtomicityChecker::check(&h).is_ok()));
    });
    group.bench_function("liveness_10k_reads", |b| {
        b.iter(|| black_box(LivenessChecker::check(&h).is_ok()));
    });

    // The optimized regime: write counts where the naive O(R·W) rescan
    // actually hurts. The `_naive` rows time the retained oracle so the
    // sweep-line gap stays visible in every bench run.
    let big = big_history(1_000, 10_000);
    group.bench_function("regularity_sweep_1k_writes_10k_reads", |b| {
        b.iter(|| black_box(RegularityChecker::check(&big).is_ok()));
    });
    group.bench_function("regularity_naive_1k_writes_10k_reads", |b| {
        b.iter(|| black_box(RegularityChecker::check_naive(&big).is_ok()));
    });
    group.bench_function("atomicity_sweep_1k_writes_10k_reads", |b| {
        b.iter(|| black_box(AtomicityChecker::check(&big).is_ok()));
    });

    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
