//! Macro-benchmark: full simulated runs (protocol + network + churn +
//! history + checkers), i.e. the cost of one experiment cell.

use criterion::{criterion_group, criterion_main, Criterion};
use dynareg_sim::{Span, Time};
use dynareg_testkit::Scenario;
use std::hint::black_box;

fn bench_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("sync_n50_300ticks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Scenario::synchronous(50, Span::ticks(4))
                .churn_fraction_of_bound(0.5)
                .duration(Span::ticks(300))
                .seed(seed)
                .run();
            black_box(report.total_messages);
        });
    });

    // The keyed register-space layer: same world shape as the sync case,
    // multiplexed over 16 Zipf-addressed registers (per-key checks
    // included — the cost of one keyed experiment cell).
    group.bench_function("space_n50_16keys_300ticks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Scenario::synchronous(50, Span::ticks(4))
                .keys(16)
                .zipf(1.0)
                .churn_fraction_of_bound(0.5)
                .duration(Span::ticks(300))
                .seed(seed)
                .run();
            black_box((report.total_messages, report.all_keys_safe()));
        });
    });

    group.bench_function("es_n25_300ticks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let report = Scenario::eventually_synchronous(25, Span::ticks(4), Time::ZERO)
                .churn_fraction_of_bound(0.5)
                .duration(Span::ticks(300))
                .seed(seed)
                .run();
            black_box(report.total_messages);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
