//! Micro-benchmarks of single protocol state-machine transitions — what a
//! real deployment would execute per received message.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynareg_core::es::{EsConfig, EsMsg, EsRegister, Timestamp};
use dynareg_core::sync::{SyncConfig, SyncMsg, SyncRegister};
use dynareg_core::RegisterProcess;
use dynareg_sim::{NodeId, OpId, Span, Time};
use std::hint::black_box;

fn bench_sync_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_protocol");
    group.sample_size(30);

    group.bench_function("write_delivery", |b| {
        b.iter_batched(
            || {
                SyncRegister::new_bootstrap(
                    NodeId::from_raw(0),
                    SyncConfig::new(Span::ticks(4)),
                    0u64,
                )
            },
            |mut p| {
                for sn in 1..100i64 {
                    black_box(p.on_message(
                        Time::at(sn as u64),
                        NodeId::from_raw(1),
                        SyncMsg::Write {
                            value: sn as u64,
                            sn,
                        },
                    ));
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("local_read", |b| {
        let mut p =
            SyncRegister::new_bootstrap(NodeId::from_raw(0), SyncConfig::new(Span::ticks(4)), 0u64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(p.on_read(Time::at(i), OpId::from_raw(i)));
        });
    });

    group.finish();
}

fn bench_es_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("es_protocol");
    group.sample_size(30);

    group.bench_function("full_read_round_n25", |b| {
        let cfg = EsConfig::new(25); // quorum 13
        b.iter_batched(
            || EsRegister::new_bootstrap(NodeId::from_raw(0), cfg, 0u64),
            |mut p| {
                black_box(p.on_read(Time::at(1), OpId::from_raw(1)));
                for i in 1..=13u64 {
                    black_box(p.on_message(
                        Time::at(2),
                        NodeId::from_raw(i),
                        EsMsg::Reply {
                            value: Some(9),
                            ts: Timestamp { sn: 3, writer: 0 },
                            r_sn: 1,
                        },
                    ));
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("write_delivery_and_ack", |b| {
        b.iter_batched(
            || EsRegister::new_bootstrap(NodeId::from_raw(0), EsConfig::new(25), 0u64),
            |mut p| {
                for sn in 1..50i64 {
                    black_box(p.on_message(
                        Time::at(sn as u64),
                        NodeId::from_raw(1),
                        EsMsg::Write {
                            value: sn as u64,
                            ts: Timestamp { sn, writer: 1 },
                        },
                    ));
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_sync_steps, bench_es_steps);
criterion_main!(benches);
