//! The experiment binaries' argument contract: every malformed
//! invocation is a single usage line on stderr and exit code 2 — never a
//! panic backtrace.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("experiment binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_usage_error(bin: &str, args: &[&str]) {
    let (code, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(2),
        "{bin} {args:?} must exit 2, stderr: {stderr}"
    );
    let trimmed = stderr.trim_end();
    assert!(
        trimmed.starts_with("error: ") && !trimmed.contains('\n'),
        "{bin} {args:?} must print one usage line, got: {stderr:?}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{bin} {args:?} must not panic: {stderr:?}"
    );
}

#[test]
fn scenario_runner_rejects_bad_invocations() {
    let bin = env!("CARGO_BIN_EXE_exp_scenario_run");
    assert_usage_error(bin, &[]);
    assert_usage_error(bin, &["missing.dyn", "--seed", "banana"]);
    assert_usage_error(bin, &["a.dyn", "b.dyn"]);
    assert_usage_error(bin, &["--unknown-flag"]);
    assert_usage_error(bin, &["/definitely/not/a/file.dyn"]);
}

#[test]
fn flagged_experiments_reject_bad_values() {
    assert_usage_error(
        env!("CARGO_BIN_EXE_exp_phase_diagram"),
        &["--scale", "huge"],
    );
    assert_usage_error(env!("CARGO_BIN_EXE_exp_phase_diagram"), &["--threads", "0"]);
    assert_usage_error(env!("CARGO_BIN_EXE_exp_perf_soak"), &["--ticks", "-3"]);
    assert_usage_error(
        env!("CARGO_BIN_EXE_exp_space_throughput"),
        &["--shards", "0"],
    );
    assert_usage_error(env!("CARGO_BIN_EXE_exp_space_throughput"), &["--nope"]);
}

#[test]
fn no_arg_experiments_reject_any_argument() {
    assert_usage_error(env!("CARGO_BIN_EXE_exp_sync_protocol"), &["extra"]);
    assert_usage_error(env!("CARGO_BIN_EXE_exp_newold_inversion"), &["--help-me"]);
}
