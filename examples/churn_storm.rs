//! Churn storm: a P2P-style membership stress test.
//!
//! The paper's motivation (§1) is P2P-like systems whose membership is
//! "self-defined at run time". This example pushes the synchronous protocol
//! through increasingly violent churn — across and beyond the Theorem 1
//! threshold `c* = 1/(3δ)` — under worst-case message delays (every message
//! takes exactly δ, the adversary the paper's bounds are computed against)
//! with no immortal writer.
//!
//! What failing looks like here is instructive: beyond the bound the
//! register does not first serve stale values — it *disappears*. The join
//! pipeline is `3δ` ticks long, so at churn `c` it permanently holds
//! `3δ·c·n` processes; at `c = c*` that is the whole population and the
//! active set `|A(τ)| ≈ n(1 − 3δc)` (Lemma 2) hits zero: nobody is left to
//! answer inquiries or accept reads. Stale reads additionally require the
//! Figure 3 race (see `exp_fig3_wait_ablation`).
//!
//! Run with: `cargo run --example churn_storm`

use dynareg::churn::LeaveSelector;
use dynareg::sim::Span;
use dynareg::testkit::experiment::run_seeds;
use dynareg::testkit::table::{fnum, Table};
use dynareg::testkit::Scenario;

fn main() {
    let n = 30;
    let delta = Span::ticks(4);
    let threshold = 1.0 / (3.0 * delta.as_ticks() as f64);

    println!("== churn storm: availability vs churn intensity ==");
    println!("n = {n}, δ = {delta}, worst-case delays, migrating writer");
    println!("Theorem 1 threshold c* = 1/(3δ) = {threshold:.4}; 6 seeds per row\n");

    let mut table = Table::new([
        "c / c*",
        "Lemma2 n(1-3δc)",
        "mean |A|",
        "min |A|",
        "joins done",
        "reads done",
        "safety",
    ]);
    for fraction in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let reports = run_seeds(0..6, |seed| {
            Scenario::synchronous(n, delta)
                .worst_case_delays()
                .migrating_writer()
                .churn_fraction_of_bound(fraction)
                .leave_selector(LeaveSelector::ActiveFirst)
                .duration(Span::ticks(400))
                .reads_per_tick(2.0)
                .seed(seed)
                .run()
        });
        let mean_active: f64 = reports
            .iter()
            .filter_map(|r| r.metrics.histogram("gauge.active").and_then(|h| h.mean()))
            .sum::<f64>()
            / reports.len() as f64;
        let min_active = reports
            .iter()
            .filter_map(|r| r.metrics.histogram("gauge.active").and_then(|h| h.min()))
            .min()
            .unwrap_or(0);
        let joins: u64 = reports
            .iter()
            .map(|r| r.metrics.counter("ops.join_completed"))
            .sum();
        let reads: usize = reports.iter().map(|r| r.reads_checked()).sum();
        let violations: usize = reports.iter().map(|r| r.safety.violation_count()).sum();
        let bound =
            (n as f64 * (1.0 - 3.0 * delta.as_ticks() as f64 * fraction * threshold)).max(0.0);
        table.row([
            fnum(fraction),
            fnum(bound),
            fnum(mean_active),
            min_active.to_string(),
            joins.to_string(),
            reads.to_string(),
            if violations == 0 {
                "OK".to_string()
            } else {
                format!("{violations} viol.")
            },
        ]);
    }
    println!("{table}");
    println!("Expected shape (paper): the active population tracks the Lemma 2");
    println!("floor n(1−3δc) and collapses to zero exactly at c = c*; with it go");
    println!("completed joins and read availability. Below the bound everything");
    println!("is clean — Theorem 1's regime.");
}
