//! Mobile swarm: wireless nodes drifting through a coverage zone.
//!
//! §2.1 of the paper motivates the join semantics with mobile nodes in a
//! wireless network: a node starts *listening* the moment it enters the
//! geographical zone and becomes active only when its join completes. This
//! example models a swarm with bursty arrivals/departures (vehicles
//! platooning through an intersection, after the burst churn of the
//! tractable-churn literature) and inspects the join pipeline itself:
//! how long joins take, how many in-flight joins get cut short by nodes
//! leaving the zone, and whether the register stays regular throughout.
//!
//! Run with: `cargo run --example mobile_swarm`

use dynareg::churn::LeaveSelector;
use dynareg::sim::Span;
use dynareg::testkit::table::Table;
use dynareg::testkit::Scenario;
use dynareg::verify::OpKind;

fn main() {
    let n = 40;
    let delta = Span::ticks(3);

    println!("== mobile swarm: joins under bursty membership ==");
    println!("n = {n}, δ = {delta}; Poisson churn (bursty at fine grain), NewestFirst");
    println!("departures (nodes that just entered the zone are likeliest to drift out)\n");

    let mut table = Table::new([
        "seed",
        "arrivals",
        "joins done",
        "join cut short",
        "join lat p50/max",
        "safety",
    ]);
    for seed in 0..6 {
        let report = Scenario::synchronous(n, delta)
            .churn_poisson(0.04) // mean c·n = 1.6 refreshes/tick, bursty
            .leave_selector(LeaveSelector::NewestFirst)
            .duration(Span::ticks(500))
            .reads_per_tick(1.5)
            .seed(seed)
            .run();

        // Joins cut short: the node left the zone before its join returned.
        let cut_short = report
            .history
            .ops()
            .iter()
            .filter(|op| {
                matches!(op.kind, OpKind::Join)
                    && !op.is_complete()
                    && report.history.left_at(op.node).is_some()
            })
            .count();
        let joins = &report.liveness.join_latency;
        table.row([
            seed.to_string(),
            (report.presence.total_arrivals() - n).to_string(),
            joins.count().to_string(),
            cut_short.to_string(),
            format!(
                "{}/{}",
                joins.median().unwrap_or(0),
                joins.max().unwrap_or(0)
            ),
            if report.safety.is_ok() {
                "OK".into()
            } else {
                format!("{} viol.", report.safety.violation_count())
            },
        ]);
        assert!(report.safety.is_ok(), "regularity must survive the swarm");
    }
    println!("{table}");
    println!(
        "Join latency is δ = {} when a write races the join (fast path) and 3δ = {}",
        delta.as_ticks(),
        3 * delta.as_ticks()
    );
    println!("otherwise (wait δ + inquiry round trip 2δ) — the two plateaus the");
    println!("protocol of Figure 1 predicts. Nodes that drift out mid-join are");
    println!("excused by the spec: liveness only covers processes that stay.");
}
