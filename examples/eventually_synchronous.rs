//! Riding out asynchrony: the quorum protocol across GST.
//!
//! The eventually synchronous protocol (Figures 4–6) never trusts a clock:
//! joins, reads and writes all complete through majority quorums. This
//! example runs the same system with the network stabilizing earlier or
//! later (GST sweep) and shows the paper's Theorem 3/4 shape: **safety is
//! never violated**, and operations all terminate once the system is
//! synchronous — pre-GST turbulence only stretches latencies.
//!
//! Run with: `cargo run --example eventually_synchronous`

use dynareg::sim::{Span, Time};
use dynareg::testkit::experiment::{run_seeds, Aggregate};
use dynareg::testkit::table::{fnum, Table};
use dynareg::testkit::Scenario;

fn main() {
    let n = 21; // quorum = 11
    let delta = Span::ticks(4);

    println!("== eventually synchronous register: GST sweep ==");
    println!("n = {n} (quorum {}), post-GST δ = {delta}", n / 2 + 1);
    println!("duration 800 ticks; churn at half the ES bound 1/(3δn); 6 seeds per cell\n");

    let mut table = Table::new([
        "GST",
        "unsafe runs",
        "stuck runs",
        "join lat (mean)",
        "read lat (mean)",
        "write lat (mean)",
    ]);
    for gst_ticks in [0u64, 200, 400] {
        let reports = run_seeds(0..6, |seed| {
            Scenario::eventually_synchronous(n, delta, Time::at(gst_ticks))
                .churn_fraction_of_bound(0.5)
                .duration(Span::ticks(800))
                .drain(Span::ticks(200)) // generous: drain must outlast GST turbulence
                .reads_per_tick(1.0)
                .seed(seed)
                .run()
        });
        let agg = Aggregate::from_reports(&reports);
        table.row([
            format!("t{gst_ticks}"),
            format!("{}/{}", agg.unsafe_runs, agg.runs),
            format!("{}/{}", agg.stuck_runs, agg.runs),
            fnum(agg.mean_join_latency),
            fnum(agg.mean_read_latency),
            fnum(agg.mean_write_latency),
        ]);
    }
    println!("{table}");
    println!("Expected shape (paper): zero unsafe runs in every row (Theorem 4 —");
    println!("safety never depends on synchrony); zero stuck runs (Theorem 3 —");
    println!("termination once the system stabilizes). Mean latencies barely");
    println!("move with GST: a majority quorum waits only for the fastest");
    println!("⌈n/2⌉+1 replies, riding the fast side of the pre-GST heavy tail —");
    println!("eventual synchrony buys worst-case termination, not average speed.");
}
