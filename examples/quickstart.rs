//! Quickstart: a regular register surviving constant churn.
//!
//! Builds the paper's synchronous system (n processes, delay bound δ,
//! constant churn at half the proven threshold `1/(3δ)`), runs a steady
//! read/write workload, and checks the two properties of §2.2:
//! Safety (regularity) and Liveness.
//!
//! Run with: `cargo run --example quickstart`

use dynareg::sim::Span;
use dynareg::testkit::Scenario;

fn main() {
    let n = 50;
    let delta = Span::ticks(5);

    println!("== dynareg quickstart ==");
    println!("system: n = {n}, δ = {delta}, churn c = ½ · 1/(3δ)");
    println!();

    let report = Scenario::synchronous(n, delta)
        .churn_fraction_of_bound(0.5) // c = 0.5 · 1/(3δ): inside Theorem 1
        .duration(Span::ticks(600))
        .reads_per_tick(2.0)
        .seed(2009) // ICDCS 2009 — any seed reproduces its exact run
        .run();

    println!(
        "churn: {} processes joined, {} left, population constant",
        report.presence.total_arrivals() - n,
        report.presence.total_departures()
    );
    println!(
        "operations: {} reads checked, {} messages sent",
        report.reads_checked(),
        report.total_messages
    );
    println!();
    println!(
        "safety   (read returns last or concurrent write): {}",
        report.safety
    );
    println!("{}", report.liveness);
    println!();
    println!("read latency is zero — the synchronous protocol's whole point is");
    println!("purely local reads; joins and writes pay the δ waits instead.");

    assert!(
        report.safety.is_ok(),
        "regularity must hold under the churn bound"
    );
    assert!(
        report.liveness.is_ok(),
        "every operation by a staying process returns"
    );
    println!("\nOK — the register is regular and live under churn.");
}
