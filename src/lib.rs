//! # dynareg — regular registers for dynamic distributed systems
//!
//! Facade crate re-exporting the full `dynareg` workspace: a reproduction of
//! *"Implementing a Register in a Dynamic Distributed System"* (R. Baldoni,
//! S. Bonomi, A.-M. Kermarrec, M. Raynal — ICDCS 2009 / IRISA PI 1913).
//!
//! The paper builds a **regular read/write register** — the middle rung of
//! Lamport's safe/regular/atomic ladder — in a message-passing system whose
//! membership *churns*: at every time unit a fraction `c` of the `n`
//! processes leaves and is replaced by fresh arrivals. It gives:
//!
//! * a protocol for **synchronous** systems with purely local reads, correct
//!   when `c ≤ 1/(3δ)` ([`core::sync`]),
//! * an **impossibility** result for fully asynchronous dynamic systems,
//! * a quorum-based protocol for **eventually synchronous** systems
//!   requiring a majority of active processes ([`core::es`]).
//!
//! # Quickstart
//!
//! ```
//! use dynareg::testkit::{Scenario, ProtocolChoice};
//! use dynareg::sim::Span;
//!
//! // A small synchronous system: n = 20, δ = 4 ticks, churn at half the
//! // paper's bound c = 1/(3δ), one writer, readers everywhere.
//! let report = Scenario::synchronous(20, Span::ticks(4))
//!     .churn_fraction_of_bound(0.5)
//!     .duration(Span::ticks(400))
//!     .seed(1)
//!     .run();
//!
//! assert!(report.safety.is_ok(), "regularity must hold under the bound");
//! assert_eq!(report.liveness.incomplete_stayer_count(), 0);
//! # let _ = ProtocolChoice::Synchronous; // re-export smoke-use
//! ```
//!
//! # Building & testing
//!
//! The repository is a single cargo workspace; the tier-1 verify is
//!
//! ```sh
//! cargo build --release && cargo test -q
//! ```
//!
//! run from the repo root — it builds all crates and runs every unit,
//! integration, property and doc test. `cargo clippy --workspace
//! --all-targets -- -D warnings` is the lint gate, `cargo run --release
//! --example quickstart` runs the example above, and the `exp_*` binaries
//! in `dynareg-bench` (e.g. `cargo run --release --bin
//! exp_sync_churn_threshold`) regenerate the paper's experiment tables.
//! External dependencies (`rand`, `proptest`, `criterion`) resolve to
//! offline shims under `crates/shims` — the build never touches a
//! registry. Property-test case counts are pinned per suite; set
//! `PROPTEST_CASES` to deepen a local run.
//!
//! # Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `dynareg-sim` | deterministic discrete-event engine |
//! | [`net`] | `dynareg-net` | timed network, timely broadcast, presence |
//! | [`churn`] | `dynareg-churn` | churn models and membership analytics |
//! | [`verify`] | `dynareg-verify` | histories + regular/atomic/safe/liveness checkers |
//! | [`core`] | `dynareg-core` | the paper's protocols and extensions |
//! | [`testkit`] | `dynareg-testkit` | world runtime, scenarios, experiment sweeps |
//! | [`fleet`] | `dynareg-fleet` | multi-threaded sweep orchestrator, phase diagrams |

#![forbid(unsafe_code)]

pub use dynareg_churn as churn;
pub use dynareg_core as core;
pub use dynareg_fleet as fleet;
pub use dynareg_net as net;
pub use dynareg_sim as sim;
pub use dynareg_testkit as testkit;
pub use dynareg_verify as verify;
